// Oracle for the facts-driven rewriter (OptimizeWithFacts/OptimizeProgram):
// a rewritten program must be observably equivalent to the original — same
// statuses, same show outputs, byte-identical final database — on every
// storage engine. This is the soundness gate for the abstract interpreter's
// consumers (DESIGN.md §10): if a fact ever over-claims, some engine/seed
// pair here diverges.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lang/absint.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "optimizer/rewriter.h"
#include "rollback/persistence.h"
#include "workload/generator.h"

namespace ttra {
namespace {

constexpr StorageKind kEngines[] = {
    StorageKind::kFullCopy, StorageKind::kDelta, StorageKind::kCheckpoint,
    StorageKind::kReverseDelta};

struct RunOutcome {
  bool ok = false;
  std::string status;
  std::vector<lang::StateValue> outputs;
  TransactionNumber txn = 0;
  std::string encoded;
};

RunOutcome Execute(const lang::Program& program, StorageKind kind) {
  DatabaseOptions options;
  options.storage = kind;
  Database db(options);
  RunOutcome out;
  const Status status =
      lang::ExecProgram(program, db, &out.outputs, {.strict = true});
  out.ok = status.ok();
  out.status = status.ToString();
  out.txn = db.transaction_number();
  out.encoded = EncodeDatabase(db);
  return out;
}

void ExpectEquivalentOnAllEngines(const lang::Program& original,
                                  const lang::Program& rewritten) {
  for (StorageKind kind : kEngines) {
    SCOPED_TRACE(std::string("engine ") + std::string(StorageKindName(kind)));
    const RunOutcome a = Execute(original, kind);
    const RunOutcome b = Execute(rewritten, kind);
    EXPECT_EQ(a.ok, b.ok) << a.status << " vs " << b.status;
    EXPECT_EQ(a.txn, b.txn);
    EXPECT_EQ(a.encoded, b.encoded) << "final database states differ";
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i) {
      EXPECT_TRUE(a.outputs[i] == b.outputs[i]) << "show output " << i;
    }
  }
}

lang::Program MustParse(const std::string& source) {
  auto program = lang::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? *program : lang::Program{};
}

/// Whole-program path: OptimizeProgram from the empty database, then the
/// equivalence check. Returns the rewrite count so callers can assert the
/// test is not vacuous.
int CheckWholeProgram(const lang::Program& program) {
  optimizer::RewriteStats stats;
  const lang::Program rewritten = optimizer::OptimizeProgram(
      program, lang::Catalog(), lang::AbsStateFromDatabase(Database()),
      &stats);
  ExpectEquivalentOnAllEngines(program, rewritten);
  return stats.applications;
}

int CheckWholeProgram(const std::string& source) {
  return CheckWholeProgram(MustParse(source));
}

/// Per-statement path: each statement is optimized against live facts from
/// the database it is about to run on (exactly what `ttra run --optimize`
/// does), in strict and lax modes.
void CheckPerStatement(const lang::Program& program, bool strict) {
  for (StorageKind kind : kEngines) {
    SCOPED_TRACE(std::string("engine ") + std::string(StorageKindName(kind)) +
                 (strict ? " strict" : " lax"));
    DatabaseOptions options;
    options.storage = kind;
    Database a(options);
    Database b(options);
    std::vector<lang::StateValue> out_a, out_b;
    const lang::ExecOptions exec{.strict = strict};
    for (const lang::Stmt& stmt : program) {
      const lang::Catalog catalog(b);
      const lang::AbsState facts = lang::AbsStateFromDatabase(b);
      lang::Stmt optimized = stmt;
      if (auto* modify = std::get_if<lang::ModifyStateStmt>(&optimized)) {
        modify->expr = optimizer::OptimizeWithFacts(modify->expr, catalog,
                                                    facts);
      } else if (auto* show = std::get_if<lang::ShowStmt>(&optimized)) {
        show->expr = optimizer::OptimizeWithFacts(show->expr, catalog, facts);
      }
      const Status sa = lang::ExecStmt(stmt, a, &out_a, exec);
      const Status sb = lang::ExecStmt(optimized, b, &out_b, exec);
      EXPECT_EQ(sa.ok(), sb.ok())
          << sa.ToString() << " vs " << sb.ToString();
      if (strict && (!sa.ok() || !sb.ok())) break;
    }
    EXPECT_EQ(a.transaction_number(), b.transaction_number());
    EXPECT_EQ(EncodeDatabase(a), EncodeDatabase(b));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_TRUE(out_a[i] == out_b[i]) << "show output " << i;
    }
  }
}

// --- Hand-built programs exercising each rewrite family ---------------------

TEST(RewriteOracle, RollbackEmptyFoldAndInfNormalize) {
  const int applications = CheckWholeProgram(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
    show(rho(r, 0));
    show(rho(r, 1));
    show(rho(r, 2));
    show(rho(r, 1000));
    show(rho(r, inf));
  )");
  // rho(r, 0) and rho(r, 1) fold to ∅; rho(r, 2) and rho(r, 1000)
  // normalize to rho(r, inf).
  EXPECT_GE(applications, 4);
}

TEST(RewriteOracle, HistoricalRollbackFolds) {
  const int applications = CheckWholeProgram(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 10)});
    modify_state(t, hrho(t, inf) union (n: int) {(2) @ [20, 30)});
    show(hrho(t, 1));
    show(hrho(t, 500));
  )");
  EXPECT_GE(applications, 2);
}

TEST(RewriteOracle, EmptyOperandPruning) {
  const int applications = CheckWholeProgram(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1), (2)});
    show(rho(r, inf) union rho(r, 0));
    show(rho(r, 0) minus rho(r, inf));
    show(rho(r, inf) minus rho(r, 0));
    show(rho(r, 0) intersect rho(r, inf));
    show(rho(r, 0) join rho(r, inf));
    show(rho(r, 0) times rename[n -> m](rho(r, inf)));
  )");
  EXPECT_GE(applications, 6);
}

TEST(RewriteOracle, ConstantFolding) {
  const int applications = CheckWholeProgram(R"(
    define_relation(r, snapshot, (n: int));
    modify_state(r, select[n > 1]((n: int) {(1), (2), (3)}));
    show((n: int) {(1)} union (n: int) {(2)});
    show(project[n]((n: int, m: int) {(1, 2)}));
  )");
  EXPECT_GE(applications, 3);
}

TEST(RewriteOracle, ValueDependentFailureIsPreserved) {
  // The extend divides by zero: relation-free, but evaluation fails, so
  // the fold must NOT fire and the rewritten program must fail at run time
  // exactly like the original (on every engine).
  CheckWholeProgram(R"(
    define_relation(r, snapshot, (n: int));
    show(extend[z = (n / 0)]((n: int) {(1)}));
  )");
}

TEST(RewriteOracle, SchemaEvolutionBlocksUnsoundPruning) {
  // rho(e, 0) observes the *define-time* scheme (a: int), not the current
  // (a: int, b: int): the union's run-time schema check fails even though
  // static analysis (typed against the current scheme) accepts it. The
  // ∅-pruning gate (RuntimeSchemaProvable) must refuse to erase that
  // run-time error, so original and rewritten both fail.
  CheckWholeProgram(R"(
    define_relation(e, rollback, (a: int));
    modify_state(e, (a: int) {(1)});
    modify_schema(e, (a: int, b: int));
    modify_state(e, (a: int, b: int) {(1, 2)});
    show(rho(e, inf) union rho(e, 0));
  )");
}

TEST(RewriteOracle, SchemaEvolutionOldStateObservation) {
  // rho(e, 2) observes the old-scheme state (TTRA-W007 territory); show
  // prints it fine. The rewriter must leave it alone (no fold applies) and
  // rho(e, 1000) may still normalize to ∞ (same observed state).
  CheckWholeProgram(R"(
    define_relation(e, rollback, (a: int));
    modify_state(e, (a: int) {(1)});
    modify_schema(e, (a: int, b: int));
    modify_state(e, (a: int, b: int) {(1, 2)});
    show(rho(e, 2));
    show(rho(e, 1000));
  )");
}

TEST(RewriteOracle, AnalyzerRejectedStatementsAreUntouched) {
  // Statement 2 references an unknown relation: the analyzer rejects it,
  // OptimizeProgram must leave it verbatim, and strict execution stops
  // there in both versions.
  const lang::Program program = MustParse(R"(
    define_relation(r, rollback, (n: int));
    show(rho(ghost, inf));
    show(rho(r, 0));
  )");
  optimizer::RewriteStats stats;
  const lang::Program rewritten = optimizer::OptimizeProgram(
      program, lang::Catalog(), lang::AbsStateFromDatabase(Database()),
      &stats);
  ASSERT_EQ(rewritten.size(), program.size());
  EXPECT_TRUE(rewritten[1] == program[1]);
  ExpectEquivalentOnAllEngines(program, rewritten);
}

// --- Randomized programs over every engine ----------------------------------

class RewriteOracleSeeds : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RewriteOracleSeeds,
                         ::testing::Range<uint64_t>(0, 12));

lang::Program GeneratedProgram(uint64_t seed) {
  workload::Generator gen(seed);
  const Schema schema = gen.RandomSchema();
  lang::Program program;
  program.push_back(
      lang::DefineRelationStmt{"r", RelationType::kRollback, schema});
  const size_t updates = 2 + seed % 3;
  for (size_t i = 0; i < updates; ++i) {
    program.push_back(lang::ModifyStateStmt{
        "r", lang::Expr::Const(gen.RandomState(schema, 8))});
  }
  // Probes at the boundaries the rewriter reasons about: before the
  // define, at the define, mid-history, beyond the last state, and ∞.
  std::vector<lang::Expr> bases;
  bases.push_back(lang::Expr::Rollback("r", std::nullopt, false));
  bases.push_back(lang::Expr::Rollback("r", 0, false));
  bases.push_back(lang::Expr::Rollback("r", 1, false));
  bases.push_back(lang::Expr::Rollback("r", 1 + updates / 2, false));
  bases.push_back(lang::Expr::Rollback("r", 1000000, false));
  bases.push_back(lang::Expr::Const(gen.RandomState(schema, 5)));
  bases.push_back(lang::Expr::Const(SnapshotState::Empty(schema)));
  for (int i = 0; i < 4; ++i) {
    program.push_back(lang::ShowStmt{gen.RandomExpr(bases, schema, 3)});
  }
  program.push_back(
      lang::ModifyStateStmt{"r", gen.RandomExpr(bases, schema, 2)});
  program.push_back(lang::ShowStmt{lang::Expr::Rollback("r", std::nullopt,
                                                        false)});
  return program;
}

TEST_P(RewriteOracleSeeds, WholeProgramEquivalence) {
  CheckWholeProgram(GeneratedProgram(GetParam()));
}

TEST_P(RewriteOracleSeeds, PerStatementLiveFactsEquivalence) {
  const lang::Program program = GeneratedProgram(GetParam());
  CheckPerStatement(program, /*strict=*/true);
  CheckPerStatement(program, /*strict=*/false);
}

}  // namespace
}  // namespace ttra
