#include <gtest/gtest.h>

#include "rollback/commands.h"
#include "rollback/database.h"
#include "rollback/relation.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Schema EmpSchema() {
  return *Schema::Make({{"name", ValueType::kString},
                        {"salary", ValueType::kInt}});
}

SnapshotState EmpState(std::vector<std::pair<std::string, int64_t>> rows) {
  std::vector<Tuple> tuples;
  tuples.reserve(rows.size());
  for (auto& [name, salary] : rows) {
    tuples.push_back(Tuple{Value::String(name), Value::Int(salary)});
  }
  return *SnapshotState::Make(EmpSchema(), std::move(tuples));
}

HistoricalState EmpHistory(
    std::vector<std::tuple<std::string, int64_t, Interval>> rows) {
  std::vector<HistoricalTuple> tuples;
  for (auto& [name, salary, valid] : rows) {
    tuples.push_back(
        HistoricalTuple{Tuple{Value::String(name), Value::Int(salary)},
                        TemporalElement::Of({valid})});
  }
  return *HistoricalState::Make(EmpSchema(), std::move(tuples));
}

// --- RelationType helpers ----------------------------------------------------

TEST(RelationTypeTest, NamesRoundTrip) {
  for (RelationType t : {RelationType::kSnapshot, RelationType::kRollback,
                         RelationType::kHistorical, RelationType::kTemporal}) {
    auto parsed = ParseRelationType(RelationTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseRelationType("bitemporal").ok());
}

TEST(RelationTypeTest, Classification) {
  EXPECT_TRUE(HoldsSnapshotStates(RelationType::kSnapshot));
  EXPECT_TRUE(HoldsSnapshotStates(RelationType::kRollback));
  EXPECT_FALSE(HoldsSnapshotStates(RelationType::kHistorical));
  EXPECT_FALSE(HoldsSnapshotStates(RelationType::kTemporal));
  EXPECT_FALSE(RetainsHistory(RelationType::kSnapshot));
  EXPECT_TRUE(RetainsHistory(RelationType::kRollback));
  EXPECT_FALSE(RetainsHistory(RelationType::kHistorical));
  EXPECT_TRUE(RetainsHistory(RelationType::kTemporal));
}

// --- Relation: modify_state dispatch (paper §3.5) -----------------------------

TEST(RelationTest, SnapshotRelationReplacesItsSingleState) {
  Relation r = Relation::Make(RelationType::kSnapshot, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"ed", 100}}), 2).ok());
  ASSERT_TRUE(r.SetState(EmpState({{"rick", 200}}), 3).ok());
  EXPECT_EQ(r.history_length(), 1u);  // always a single-element sequence
  auto current = r.SnapshotAt(3);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, EmpState({{"rick", 200}}));
}

TEST(RelationTest, RollbackRelationAppends) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"ed", 100}}), 2).ok());
  ASSERT_TRUE(r.SetState(EmpState({{"ed", 100}, {"rick", 200}}), 5).ok());
  ASSERT_TRUE(r.SetState(EmpState({{"rick", 200}}), 9).ok());
  EXPECT_EQ(r.history_length(), 3u);
  EXPECT_EQ(r.TxnAt(0), 2u);
  EXPECT_EQ(r.TxnAt(2), 9u);
}

TEST(RelationTest, FindStateInterpolates) {
  // FINDSTATE returns the state with the largest txn <= N (paper §3.3).
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"a", 1}}), 3).ok());
  ASSERT_TRUE(r.SetState(EmpState({{"b", 2}}), 7).ok());
  EXPECT_EQ(*r.SnapshotAt(3), EmpState({{"a", 1}}));
  EXPECT_EQ(*r.SnapshotAt(5), EmpState({{"a", 1}}));  // gap → interpolate
  EXPECT_EQ(*r.SnapshotAt(6), EmpState({{"a", 1}}));
  EXPECT_EQ(*r.SnapshotAt(7), EmpState({{"b", 2}}));
  EXPECT_EQ(*r.SnapshotAt(1000), EmpState({{"b", 2}}));
}

TEST(RelationTest, FindStateBeforeFirstTxnIsEmpty) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"a", 1}}), 5).ok());
  auto early = r.SnapshotAt(4);
  ASSERT_TRUE(early.ok());
  EXPECT_TRUE(early->empty());
  EXPECT_EQ(early->schema(), EmpSchema());  // typed empty state
}

TEST(RelationTest, EmptyRelationYieldsEmptyState) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  auto state = r.SnapshotAt(100);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->empty());
}

TEST(RelationTest, StateKindMismatchErrors) {
  Relation snap = Relation::Make(RelationType::kSnapshot, EmpSchema(), 1);
  EXPECT_EQ(snap.SetState(EmpHistory({}), 2).code(),
            ErrorCode::kTypeMismatch);
  EXPECT_EQ(snap.HistoricalAt(5).status().code(),
            ErrorCode::kInvalidRollback);
  Relation temp = Relation::Make(RelationType::kTemporal, EmpSchema(), 1);
  EXPECT_EQ(temp.SetState(EmpState({}), 2).code(), ErrorCode::kTypeMismatch);
  EXPECT_EQ(temp.SnapshotAt(5).status().code(), ErrorCode::kInvalidRollback);
}

TEST(RelationTest, SchemaMismatchOnSetState) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  SnapshotState wrong = *SnapshotState::Make(
      *Schema::Make({{"x", ValueType::kInt}}), {});
  EXPECT_EQ(r.SetState(wrong, 2).code(), ErrorCode::kSchemaMismatch);
}

TEST(RelationTest, TemporalRelationStoresHistoricalStates) {
  Relation r = Relation::Make(RelationType::kTemporal, EmpSchema(), 1);
  HistoricalState v1 = EmpHistory({{"ed", 100, Interval::Make(0, 10)}});
  HistoricalState v2 = EmpHistory({{"ed", 100, Interval::Make(0, 10)},
                                   {"ed", 150, Interval::Make(10, 20)}});
  ASSERT_TRUE(r.SetState(v1, 2).ok());
  ASSERT_TRUE(r.SetState(v2, 3).ok());
  EXPECT_EQ(r.history_length(), 2u);
  EXPECT_EQ(*r.HistoricalAt(2), v1);
  EXPECT_EQ(*r.HistoricalAt(3), v2);
}

TEST(RelationTest, SchemaEvolutionVersionsSchemes) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"a", 1}}), 2).ok());
  Schema wider = *Schema::Make({{"name", ValueType::kString},
                                {"salary", ValueType::kInt},
                                {"dept", ValueType::kString}});
  ASSERT_TRUE(r.SetSchema(wider, 3).ok());
  EXPECT_EQ(r.schema(), wider);
  EXPECT_EQ(r.SchemaAt(2), EmpSchema());
  EXPECT_EQ(r.SchemaAt(3), wider);
  // Old states keep the old scheme.
  EXPECT_EQ(r.SnapshotAt(2)->schema(), EmpSchema());
  // New states must conform to the new scheme.
  EXPECT_FALSE(r.SetState(EmpState({{"b", 2}}), 4).ok());
  SnapshotState wide_state = *SnapshotState::Make(
      wider, {Tuple{Value::String("b"), Value::Int(2),
                    Value::String("cs")}});
  EXPECT_TRUE(r.SetState(wide_state, 4).ok());
  EXPECT_EQ(*r.SnapshotAt(4), wide_state);
}

TEST(RelationTest, CloneIsDeep) {
  Relation r = Relation::Make(RelationType::kRollback, EmpSchema(), 1);
  ASSERT_TRUE(r.SetState(EmpState({{"a", 1}}), 2).ok());
  Relation copy = r.Clone();
  ASSERT_TRUE(copy.SetState(EmpState({{"b", 2}}), 3).ok());
  EXPECT_EQ(r.history_length(), 1u);
  EXPECT_EQ(copy.history_length(), 2u);
}

// --- Database: the command denotations (paper §3.5, §3.6) ---------------------

TEST(DatabaseTest, EmptyDatabaseMatchesPaperDefinition) {
  Database db;
  EXPECT_EQ(db.transaction_number(), 0u);  // P⟦C⟧ = C⟦C⟧(EMPTY, 0)
  EXPECT_EQ(db.Find("anything"), nullptr);  // all identifiers map to ⊥
  EXPECT_TRUE(db.RelationNames().empty());
}

TEST(DatabaseTest, DefineRelationBindsAndIncrements) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  EXPECT_EQ(db.transaction_number(), 1u);
  ASSERT_NE(db.Find("emp"), nullptr);
  EXPECT_EQ(db.Find("emp")->type(), RelationType::kRollback);
}

TEST(DatabaseTest, RedefineLeavesDatabaseUnchanged) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  Status status =
      db.DefineRelation("emp", RelationType::kSnapshot, EmpSchema());
  EXPECT_EQ(status.code(), ErrorCode::kAlreadyDefined);
  // The paper's `else d`: nothing changed, not even the txn counter.
  EXPECT_EQ(db.transaction_number(), 1u);
  EXPECT_EQ(db.Find("emp")->type(), RelationType::kRollback);
}

TEST(DatabaseTest, ModifyStateAssignsCommitTxn) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  ASSERT_TRUE(db.ModifyState("emp", EmpState({{"ed", 100}})).ok());
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(db.Find("emp")->TxnAt(0), 2u);  // state stamped with n+1
}

TEST(DatabaseTest, ModifyUndefinedRelationFailsUnchanged) {
  Database db;
  Status status = db.ModifyState("ghost", EmpState({}));
  EXPECT_EQ(status.code(), ErrorCode::kUnknownIdentifier);
  EXPECT_EQ(db.transaction_number(), 0u);
}

TEST(DatabaseTest, FailedModifyDoesNotBurnTxn) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kTemporal, EmpSchema()).ok());
  // Wrong state kind for a temporal relation.
  EXPECT_FALSE(db.ModifyState("emp", EmpState({})).ok());
  EXPECT_EQ(db.transaction_number(), 1u);
}

TEST(DatabaseTest, RollbackCurrentOnSnapshotAndRollback) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("s", RelationType::kSnapshot, EmpSchema()).ok());
  ASSERT_TRUE(
      db.DefineRelation("r", RelationType::kRollback, EmpSchema()).ok());
  ASSERT_TRUE(db.ModifyState("s", EmpState({{"a", 1}})).ok());
  ASSERT_TRUE(db.ModifyState("r", EmpState({{"b", 2}})).ok());
  // ρ(I, ∞) works for both types.
  EXPECT_EQ(*db.Rollback("s"), EmpState({{"a", 1}}));
  EXPECT_EQ(*db.Rollback("r"), EmpState({{"b", 2}}));
}

TEST(DatabaseTest, RollbackToPastRequiresRollbackRelation) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("s", RelationType::kSnapshot, EmpSchema()).ok());
  ASSERT_TRUE(db.ModifyState("s", EmpState({{"a", 1}})).ok());
  auto r = db.Rollback("s", 2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidRollback);
}

TEST(DatabaseTest, RollbackRetrievesPastStates) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  ASSERT_TRUE(db.ModifyState("emp", EmpState({{"ed", 100}})).ok());  // txn 2
  ASSERT_TRUE(
      db.ModifyState("emp", EmpState({{"ed", 100}, {"rick", 200}})).ok());
  ASSERT_TRUE(db.ModifyState("emp", EmpState({{"rick", 250}})).ok());  // txn 4
  EXPECT_EQ(*db.Rollback("emp", 2), EmpState({{"ed", 100}}));
  EXPECT_EQ(*db.Rollback("emp", 3), EmpState({{"ed", 100}, {"rick", 200}}));
  EXPECT_EQ(*db.Rollback("emp", 4), EmpState({{"rick", 250}}));
  EXPECT_EQ(*db.Rollback("emp"), EmpState({{"rick", 250}}));
  EXPECT_TRUE(db.Rollback("emp", 1)->empty());  // before first modify
}

TEST(DatabaseTest, RollbackOfUndefinedRelationFails) {
  Database db;
  EXPECT_EQ(db.Rollback("ghost").status().code(),
            ErrorCode::kUnknownIdentifier);
}

TEST(DatabaseTest, HistoricalRollbackTypeRules) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("h", RelationType::kHistorical, EmpSchema()).ok());
  ASSERT_TRUE(
      db.DefineRelation("t", RelationType::kTemporal, EmpSchema()).ok());
  HistoricalState v = EmpHistory({{"ed", 100, Interval::Make(0, 10)}});
  ASSERT_TRUE(db.ModifyState("h", v).ok());
  ASSERT_TRUE(db.ModifyState("t", v).ok());
  EXPECT_EQ(*db.RollbackHistorical("h"), v);
  EXPECT_EQ(*db.RollbackHistorical("t"), v);
  // ρ̂ with a finite txn only on temporal relations.
  EXPECT_EQ(db.RollbackHistorical("h", 3).status().code(),
            ErrorCode::kInvalidRollback);
  EXPECT_TRUE(db.RollbackHistorical("t", 4).ok());
  // ρ on historical relations is invalid, and vice versa.
  EXPECT_EQ(db.Rollback("h").status().code(), ErrorCode::kInvalidRollback);
}

TEST(DatabaseTest, TemporalRollbackRetrievesPastHistories) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("t", RelationType::kTemporal, EmpSchema()).ok());
  HistoricalState v1 = EmpHistory({{"ed", 100, Interval::Make(0, 10)}});
  HistoricalState v2 = EmpHistory({{"ed", 100, Interval::Make(0, 10)},
                                   {"ed", 150, Interval::Make(10, 20)}});
  ASSERT_TRUE(db.ModifyState("t", v1).ok());  // txn 2
  ASSERT_TRUE(db.ModifyState("t", v2).ok());  // txn 3
  EXPECT_EQ(*db.RollbackHistorical("t", 2), v1);
  EXPECT_EQ(*db.RollbackHistorical("t", 3), v2);
  EXPECT_EQ(*db.RollbackHistorical("t"), v2);
}

TEST(DatabaseTest, DeleteRelationUnbinds) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  ASSERT_TRUE(db.DeleteRelation("emp").ok());
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(db.Find("emp"), nullptr);
  EXPECT_EQ(db.DeleteRelation("emp").code(), ErrorCode::kUnknownIdentifier);
  // The identifier can be rebound afterwards.
  EXPECT_TRUE(
      db.DefineRelation("emp", RelationType::kSnapshot, EmpSchema()).ok());
}

TEST(DatabaseTest, ModifySchemaIncrementsTxn) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  Schema wider = *Schema::Make({{"name", ValueType::kString},
                                {"salary", ValueType::kInt},
                                {"dept", ValueType::kString}});
  ASSERT_TRUE(db.ModifySchema("emp", wider).ok());
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(db.Find("emp")->schema(), wider);
}

TEST(DatabaseTest, CloneIsIndependent) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("emp", RelationType::kRollback, EmpSchema()).ok());
  ASSERT_TRUE(db.ModifyState("emp", EmpState({{"a", 1}})).ok());
  Database copy = db.Clone();
  ASSERT_TRUE(copy.ModifyState("emp", EmpState({{"b", 2}})).ok());
  EXPECT_EQ(*db.Rollback("emp"), EmpState({{"a", 1}}));
  EXPECT_EQ(*copy.Rollback("emp"), EmpState({{"b", 2}}));
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(copy.transaction_number(), 3u);
}

// --- Command streams and invariants (experiment E4) ----------------------------

TEST(CommandsTest, ApplySentenceRunsInOrder) {
  std::vector<Command> sentence = {
      DefineRelationCmd{"emp", RelationType::kRollback, EmpSchema()},
      ModifySnapshotCmd{"emp", EmpState({{"ed", 100}})},
      ModifySnapshotCmd{"emp", EmpState({{"ed", 150}})},
  };
  auto db = EvalSentence(sentence);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction_number(), 3u);
  EXPECT_EQ(*db->Rollback("emp"), EmpState({{"ed", 150}}));
  EXPECT_EQ(*db->Rollback("emp", 2), EmpState({{"ed", 100}}));
}

TEST(CommandsTest, FailingCommandContinuesSequence) {
  // The denotations have no error exit: C⟦C1, C2⟧ applies C2 to whatever
  // C1 produced, and a failing command produces the unchanged database.
  std::vector<Command> sentence = {
      DefineRelationCmd{"emp", RelationType::kRollback, EmpSchema()},
      ModifySnapshotCmd{"ghost", EmpState({})},  // fails, db unchanged
      ModifySnapshotCmd{"emp", EmpState({{"ed", 100}})},
  };
  Database db;
  Status first_error = ApplySentence(db, sentence);
  EXPECT_EQ(first_error.code(), ErrorCode::kUnknownIdentifier);
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(*db.Rollback("emp"), EmpState({{"ed", 100}}));
}

class InvariantTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST_P(InvariantTest, RollbackTxnsStrictlyIncreaseAndAppendOnly) {
  workload::Generator gen(GetParam());
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback,
                                          /*updates=*/40, /*state_size=*/20,
                                          /*change_fraction=*/0.3);
  Database db;
  std::vector<SnapshotState> recorded;
  std::vector<TransactionNumber> txns;
  for (const Command& cmd : commands) {
    ASSERT_TRUE(ApplyCommand(db, cmd).ok());
    if (std::holds_alternative<ModifySnapshotCmd>(cmd)) {
      recorded.push_back(std::get<ModifySnapshotCmd>(cmd).state);
      txns.push_back(db.transaction_number());
    }
  }
  const Relation* r = db.Find("r");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->history_length(), recorded.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    // Strictly increasing transaction numbers (paper §3.2).
    if (i > 0) {
      EXPECT_LT(r->TxnAt(i - 1), r->TxnAt(i));
    }
    EXPECT_EQ(r->TxnAt(i), txns[i]);
    // Append-only: every past state is still retrievable, bit-for-bit.
    EXPECT_EQ(*db.Rollback("r", txns[i]), recorded[i]);
  }
}

TEST_P(InvariantTest, TemporalRelationSameInvariants) {
  // The identical construction works over historical states (§4, E6).
  workload::Generator gen(GetParam() + 99);
  auto commands = gen.RandomCommandStream("t", RelationType::kTemporal,
                                          /*updates=*/25, /*state_size=*/12,
                                          /*change_fraction=*/0.3);
  Database db;
  std::vector<HistoricalState> recorded;
  std::vector<TransactionNumber> txns;
  for (const Command& cmd : commands) {
    ASSERT_TRUE(ApplyCommand(db, cmd).ok());
    if (std::holds_alternative<ModifyHistoricalCmd>(cmd)) {
      recorded.push_back(std::get<ModifyHistoricalCmd>(cmd).state);
      txns.push_back(db.transaction_number());
    }
  }
  const Relation* t = db.Find("t");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->history_length(), recorded.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(*db.RollbackHistorical("t", txns[i]), recorded[i]);
  }
}

TEST_P(InvariantTest, SnapshotRelationKeepsOnlyCurrent) {
  workload::Generator gen(GetParam() + 222);
  auto commands = gen.RandomCommandStream("s", RelationType::kSnapshot,
                                          /*updates=*/20, /*state_size=*/15,
                                          /*change_fraction=*/0.4);
  Database db;
  SnapshotState last;
  for (const Command& cmd : commands) {
    ASSERT_TRUE(ApplyCommand(db, cmd).ok());
    if (std::holds_alternative<ModifySnapshotCmd>(cmd)) {
      last = std::get<ModifySnapshotCmd>(cmd).state;
    }
  }
  EXPECT_EQ(db.Find("s")->history_length(), 1u);
  EXPECT_EQ(*db.Rollback("s"), last);
}

}  // namespace
}  // namespace ttra
