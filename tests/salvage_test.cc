#include "storage/salvage.h"

#include <gtest/gtest.h>

#include "rollback/durable_executor.h"
#include "rollback/persistence.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace ttra {
namespace {

// ScanStorage/RepairStorage behind `ttra fsck`: the scan classifies the
// damage (exit codes 0/1/3/4), repair quarantines the damaged bytes and
// truncates the WAL to its last valid prefix so recovery succeeds.

constexpr size_t kWalHeaderSize = 9;

/// Builds "<dir>/wal.log" holding `payloads`; returns the image bytes.
std::string MakeWal(Env* env, const std::string& dir,
                    const std::vector<std::string>& payloads) {
  WalWriter writer(env, dir + "/wal.log");
  EXPECT_TRUE(writer.Create().ok());
  for (const std::string& p : payloads) {
    EXPECT_TRUE(writer.AddRecord(p).ok());
  }
  EXPECT_TRUE(writer.Sync().ok());
  return *env->Read(dir + "/wal.log");
}

/// Replaces a file's content wholesale (InMemoryEnv has no overwrite op).
void Overwrite(Env* env, const std::string& path, const std::string& data) {
  ASSERT_TRUE(env->Truncate(path).ok());
  ASSERT_TRUE(env->Append(path, data).ok());
  ASSERT_TRUE(env->Sync(path).ok());
}

TEST(SalvageScanTest, CleanDirectoryIsClean) {
  InMemoryEnv env;
  MakeWal(&env, "d", {"r0", "r1"});
  auto report = ScanStorage(&env, "d");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->verdict, SalvageVerdict::kClean);
  EXPECT_TRUE(report->findings.empty());
  EXPECT_TRUE(report->wal_present);
  EXPECT_FALSE(report->checkpoint_present);
  EXPECT_EQ(report->wal_valid_records, 2u);
  EXPECT_EQ(report->wal_valid_size, report->wal_size);
  EXPECT_EQ(SalvageExitCode(*report), 0);
}

TEST(SalvageScanTest, EmptyDirectoryIsClean) {
  InMemoryEnv env;
  auto report = ScanStorage(&env, "d");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SalvageVerdict::kClean);
  EXPECT_FALSE(report->wal_present);
  EXPECT_EQ(SalvageExitCode(*report), 0);
}

TEST(SalvageScanTest, TornTailIsExitCodeOne) {
  InMemoryEnv env;
  const std::string image = MakeWal(&env, "d", {"r0", "r1"});
  Overwrite(&env, "d/wal.log", image.substr(0, image.size() - 3));
  auto report = ScanStorage(&env, "d");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SalvageVerdict::kTruncatedTail);
  EXPECT_EQ(report->wal_valid_records, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].file, "d/wal.log");
  EXPECT_EQ(report->findings[0].offset, report->wal_valid_size);
  EXPECT_EQ(SalvageExitCode(*report), 1);
}

TEST(SalvageScanTest, MidLogHoleNeedsRepair) {
  InMemoryEnv env;
  std::string image = MakeWal(&env, "d", {"r0", "r1", "r2"});
  // Flip one payload bit of r1: checksum mismatch with r2 intact behind.
  const size_t r1_end = MakeWal(&env, "scratch", {"r0", "r1"}).size();
  image[r1_end - 1] ^= 0x01;
  Overwrite(&env, "d/wal.log", image);

  auto report = ScanStorage(&env, "d");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SalvageVerdict::kNeedsRepair);
  EXPECT_EQ(report->wal_valid_records, 1u);
  EXPECT_EQ(report->wal_records_after_hole, 1u);
  EXPECT_EQ(SalvageExitCode(*report), 3);
  // Two findings: the damaged record, and the stranded survivors.
  ASSERT_EQ(report->findings.size(), 2u);
  EXPECT_EQ(report->findings[0].cause, "checksum-mismatch");
  EXPECT_EQ(report->findings[1].cause, "stranded-records");
}

TEST(SalvageRepairTest, QuarantinesTheTailAndTruncatesToTheValidPrefix) {
  InMemoryEnv env;
  std::string image = MakeWal(&env, "d", {"r0", "r1", "r2"});
  const size_t valid = MakeWal(&env, "scratch", {"r0"}).size();
  image[valid + 3] ^= 0x40;  // corrupt r1's frame header
  Overwrite(&env, "d/wal.log", image);

  auto report = RepairStorage(&env, "d");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->repaired);
  EXPECT_EQ(report->quarantine_path, "d/wal.log.quarantine");
  EXPECT_EQ(report->quarantined_bytes, image.size() - valid);
  // Nothing was deleted: quarantine holds the exact damaged bytes.
  EXPECT_EQ(*env.Read("d/wal.log.quarantine"), image.substr(valid));
  // The WAL is now the exact valid prefix, and reads back clean.
  EXPECT_EQ(*env.Read("d/wal.log"), image.substr(0, valid));
  auto read = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"r0"});
  EXPECT_FALSE(read->torn_tail);
  // A re-scan agrees the directory is healthy again.
  auto rescan = ScanStorage(&env, "d");
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->verdict, SalvageVerdict::kClean);
}

TEST(SalvageRepairTest, CleanDirectoryIsLeftUntouched) {
  InMemoryEnv env;
  const std::string image = MakeWal(&env, "d", {"r0"});
  auto report = RepairStorage(&env, "d");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->repaired);
  EXPECT_EQ(SalvageExitCode(*report), 0);
  EXPECT_EQ(*env.Read("d/wal.log"), image);
  EXPECT_FALSE(env.Exists("d/wal.log.quarantine"));
}

TEST(SalvageRepairTest, DamagedHeaderQuarantinesTheWholeFile) {
  InMemoryEnv env;
  const std::string garbage = "this is definitely not a wal file";
  Overwrite(&env, "d/wal.log", garbage);
  auto scan = ScanStorage(&env, "d");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->verdict, SalvageVerdict::kNeedsRepair);
  ASSERT_FALSE(scan->findings.empty());
  EXPECT_EQ(scan->findings[0].cause, "bad-header");

  auto report = RepairStorage(&env, "d");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->repaired);
  EXPECT_EQ(*env.Read("d/wal.log.quarantine"), garbage);
  // The replacement is a fresh, durably-empty, readable log.
  auto read = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->torn_tail);
}

TEST(SalvageScanTest, InvalidCheckpointIsUnrecoverable) {
  InMemoryEnv env;
  MakeWal(&env, "d", {"r0"});
  Overwrite(&env, "d/checkpoint.db", "not a checkpoint");
  SalvageOptions options;
  options.validate_checkpoint = [](std::string_view data) {
    return DecodeDatabase(data).status();
  };
  auto report = ScanStorage(&env, "d", options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SalvageVerdict::kUnrecoverable);
  EXPECT_TRUE(report->checkpoint_present);
  EXPECT_FALSE(report->checkpoint_valid);
  EXPECT_EQ(SalvageExitCode(*report), 4);
  // Repair will not fabricate a base state: nothing is touched.
  auto repair = RepairStorage(&env, "d", options);
  ASSERT_TRUE(repair.ok());
  EXPECT_FALSE(repair->repaired);
  EXPECT_FALSE(env.Exists("d/wal.log.quarantine"));
}

TEST(SalvageScanTest, SemanticValidatorCutsAtChecksummedGarbage) {
  // A record can checksum perfectly and still be garbage (a misdirected
  // but well-framed write). Only the injected semantic validator can tell.
  InMemoryEnv env;
  MakeWal(&env, "d", {"good-0", "BAD", "good-2"});
  SalvageOptions options;
  options.validate_record = [](std::string_view payload) {
    return payload == "BAD" ? CorruptionError("not a command record")
                            : Status::Ok();
  };
  auto report = ScanStorage(&env, "d", options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SalvageVerdict::kNeedsRepair);
  EXPECT_EQ(report->wal_valid_records, 1u);
  EXPECT_EQ(report->wal_records_after_hole, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].cause, "invalid-record");
  const size_t good0_size = MakeWal(&env, "scratch", {"good-0"}).size();
  EXPECT_EQ(report->findings[0].offset, good0_size);
  EXPECT_EQ(report->wal_valid_size, good0_size);

  auto repaired = RepairStorage(&env, "d", options);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->repaired);
  auto read = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"good-0"});
}

TEST(SalvageReportTest, JsonCarriesVerdictExitCodeAndFindings) {
  InMemoryEnv env;
  std::string image = MakeWal(&env, "d", {"r0", "r1", "r2"});
  const size_t r1_end = MakeWal(&env, "scratch", {"r0", "r1"}).size();
  image[r1_end - 1] ^= 0x01;
  Overwrite(&env, "d/wal.log", image);
  auto report = ScanStorage(&env, "d");
  ASSERT_TRUE(report.ok());

  const std::string json = SalvageReportToJson(*report);
  EXPECT_NE(json.find("\"verdict\": \"needs-repair\""), std::string::npos);
  EXPECT_NE(json.find("\"exitCode\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cause\": \"checksum-mismatch\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\": \"stranded-records\""), std::string::npos);
  EXPECT_NE(json.find("\"walRecordsAfterHole\": 1"), std::string::npos);

  const std::string human = FormatSalvageReport(*report);
  EXPECT_NE(human.find("verdict: needs-repair"), std::string::npos);
  EXPECT_NE(human.find("stranded"), std::string::npos);
}

TEST(SalvageReportTest, VerdictNamesAreStable) {
  EXPECT_EQ(SalvageVerdictName(SalvageVerdict::kClean), "clean");
  EXPECT_EQ(SalvageVerdictName(SalvageVerdict::kTruncatedTail),
            "truncated-tail");
  EXPECT_EQ(SalvageVerdictName(SalvageVerdict::kNeedsRepair), "needs-repair");
  EXPECT_EQ(SalvageVerdictName(SalvageVerdict::kUnrecoverable),
            "unrecoverable");
}

// --- End to end with the executor ------------------------------------------

Schema OneIntSchema() {
  return *Schema::Make({{"n", ValueType::kInt}});
}

std::vector<Command> NthSentence(int i) {
  std::vector<Tuple> rows;
  for (int k = 0; k <= i; ++k) rows.push_back(Tuple{Value::Int(k)});
  std::vector<Command> sentence;
  sentence.push_back(ModifySnapshotCmd{
      "r", *SnapshotState::Make(OneIntSchema(), std::move(rows))});
  return sentence;
}

/// The CLI's configuration: semantic validation via the rollback decoders.
SalvageOptions ExecutorSalvageOptions() {
  SalvageOptions options;
  options.validate_record = [](std::string_view payload) {
    return DecodeWalRecord(payload).status();
  };
  options.validate_checkpoint = [](std::string_view data) {
    return DecodeDatabase(data).status();
  };
  return options;
}

TEST(SalvageEndToEndTest, RepairTurnsARefusedRecoveryIntoASuccessfulOne) {
  InMemoryEnv env;
  {
    DurableExecutor exec(&env, "d", DurableOptions{});
    ASSERT_TRUE(exec.Open().ok());
    ASSERT_TRUE(exec.Submit(Command(DefineRelationCmd{
                         "r", RelationType::kRollback, OneIntSchema()}))
                    .ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(exec.Submit(NthSentence(i)).ok());
    }
  }
  // Bit rot strikes the middle of the WAL (inside record #2's payload,
  // well clear of the records around it).
  std::string image = *env.Read("d/wal.log");
  auto intact = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), 5u);
  image[intact->record_offsets[2] + 20] ^= 0x02;
  Overwrite(&env, "d/wal.log", image);

  // Recovery refuses: intact acked commits lie beyond the hole, and
  // silently truncating would drop them.
  {
    DurableExecutor exec(&env, "d", DurableOptions{});
    Status refused = exec.Open();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), ErrorCode::kCorruption);
    EXPECT_NE(refused.message().find("fsck"), std::string::npos)
        << "refusal must point the operator at the repair tool: "
        << refused.message();
  }

  auto report = RepairStorage(&env, "d", ExecutorSalvageOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->repaired);
  EXPECT_EQ(SalvageExitCode(*report), 1);

  // After repair, recovery succeeds on the salvaged prefix: the records
  // before the hole.
  DurableExecutor exec(&env, "d", DurableOptions{});
  ASSERT_TRUE(exec.Open().ok());
  Database expected(DatabaseOptions{});
  ASSERT_TRUE(ApplySentence(expected,
                            {Command(DefineRelationCmd{
                                "r", RelationType::kRollback, OneIntSchema()})})
                  .ok());
  ASSERT_TRUE(ApplySentence(expected, NthSentence(0)).ok());
  EXPECT_EQ(EncodeDatabase(exec.Snapshot()), EncodeDatabase(expected));
  // And the repaired executor accepts new writes.
  EXPECT_TRUE(exec.Submit(NthSentence(5)).ok());
}

}  // namespace
}  // namespace ttra
