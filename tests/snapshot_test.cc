#include <gtest/gtest.h>

#include "snapshot/operators.h"
#include "snapshot/predicate.h"
#include "snapshot/schema.h"
#include "snapshot/state.h"
#include "snapshot/value.h"
#include "workload/generator.h"

namespace ttra {
namespace {

namespace ops = snapshot_ops;

Schema MakeSchema(std::vector<Attribute> attrs) {
  return *Schema::Make(std::move(attrs));
}

const Schema& TwoCol() {
  static const Schema* schema = new Schema(MakeSchema(
      {{"id", ValueType::kInt}, {"name", ValueType::kString}}));
  return *schema;
}

SnapshotState State(std::vector<Tuple> tuples) {
  return *SnapshotState::Make(TwoCol(), std::move(tuples));
}

Tuple Row(int64_t id, std::string name) {
  return Tuple{Value::Int(id), Value::String(std::move(name))};
}

// --- Value ------------------------------------------------------------------

TEST(ValueTest, TypeAndAccessors) {
  EXPECT_EQ(Value::Int(7).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Time(99).AsTime().ticks, 99);
}

TEST(ValueTest, ToStringLiterals) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(4).ToString(), "4.0");  // round-trips as double
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Time(12).ToString(), "@12");
}

TEST(ValueTest, CompareWithinType) {
  auto cmp = [](const Value& a, const Value& b) {
    return *Value::Compare(a, b);
  };
  EXPECT_LT(cmp(Value::Int(1), Value::Int(2)), 0);
  EXPECT_EQ(cmp(Value::String("a"), Value::String("a")), 0);
  EXPECT_GT(cmp(Value::Time(5), Value::Time(1)), 0);
  EXPECT_LT(cmp(Value::Bool(false), Value::Bool(true)), 0);
}

TEST(ValueTest, CompareIntDoubleIsNumeric) {
  EXPECT_EQ(*Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(*Value::Compare(Value::Int(2), Value::Double(2.5)), 0);
  EXPECT_GT(*Value::Compare(Value::Double(3.0), Value::Int(2)), 0);
}

TEST(ValueTest, CompareAcrossTypesFails) {
  auto r = Value::Compare(Value::Int(1), Value::String("1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTypeMismatch);
  EXPECT_FALSE(Value::Compare(Value::Bool(true), Value::Time(1)).ok());
}

TEST(ValueTest, HashRespectsEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  // Same payload, different type should hash differently.
  EXPECT_NE(Value::Int(5).Hash(), Value::Time(5).Hash());
}

TEST(ValueTest, ParseValueTypeRoundTrip) {
  for (ValueType t : {ValueType::kInt, ValueType::kDouble, ValueType::kString,
                      ValueType::kBool, ValueType::kUserTime}) {
    auto parsed = ParseValueType(ValueTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseValueType("float").ok());
}

// --- Schema -----------------------------------------------------------------

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto r = Schema::Make({{"a", ValueType::kInt}, {"a", ValueType::kBool}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kSchemaMismatch);
}

TEST(SchemaTest, MakeRejectsNonIdentifiers) {
  EXPECT_FALSE(Schema::Make({{"1bad", ValueType::kInt}}).ok());
  EXPECT_FALSE(Schema::Make({{"a b", ValueType::kInt}}).ok());
  EXPECT_TRUE(Schema::Make({}).ok());
}

TEST(SchemaTest, IndexOfAndNames) {
  const Schema& s = TwoCol();
  EXPECT_EQ(s.IndexOf("id"), 0u);
  EXPECT_EQ(s.IndexOf("name"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
  EXPECT_EQ(s.Names(), (std::vector<std::string>{"id", "name"}));
}

TEST(SchemaTest, ProjectKeepsOrderGiven) {
  auto projected = TwoCol().Project({"name", "id"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->Names(), (std::vector<std::string>{"name", "id"}));
  EXPECT_FALSE(TwoCol().Project({"zzz"}).ok());
}

TEST(SchemaTest, ConcatRequiresDisjointNames) {
  Schema other = MakeSchema({{"salary", ValueType::kInt}});
  auto combined = TwoCol().Concat(other);
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->size(), 3u);
  EXPECT_FALSE(TwoCol().Concat(TwoCol()).ok());
}

TEST(SchemaTest, Rename) {
  auto renamed = TwoCol().Rename("id", "key");
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->IndexOf("key").has_value());
  EXPECT_FALSE(renamed->IndexOf("id").has_value());
  EXPECT_FALSE(TwoCol().Rename("missing", "x").ok());
  EXPECT_FALSE(TwoCol().Rename("id", "name").ok());
}

TEST(SchemaTest, ToStringForm) {
  EXPECT_EQ(TwoCol().ToString(), "(id: int, name: string)");
  EXPECT_EQ(MakeSchema({}).ToString(), "()");
}

// --- Tuple / State ------------------------------------------------------------

TEST(TupleTest, ConformsToChecksArityAndTypes) {
  EXPECT_TRUE(Row(1, "a").ConformsTo(TwoCol()).ok());
  EXPECT_FALSE(Tuple{Value::Int(1)}.ConformsTo(TwoCol()).ok());
  Tuple wrong{Value::String("x"), Value::String("y")};
  auto status = wrong.ConformsTo(TwoCol());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kTypeMismatch);
}

TEST(StateTest, MakeCanonicalizesSortedUnique) {
  SnapshotState s = State({Row(2, "b"), Row(1, "a"), Row(2, "b")});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.tuples()[0], Row(1, "a"));
  EXPECT_EQ(s.tuples()[1], Row(2, "b"));
}

TEST(StateTest, EqualityIsSetEquality) {
  EXPECT_EQ(State({Row(1, "a"), Row(2, "b")}),
            State({Row(2, "b"), Row(1, "a")}));
  EXPECT_NE(State({Row(1, "a")}), State({Row(1, "b")}));
}

TEST(StateTest, MakeRejectsNonConformingTuple) {
  auto r = SnapshotState::Make(TwoCol(), {Tuple{Value::Bool(true)}});
  EXPECT_FALSE(r.ok());
}

TEST(StateTest, Contains) {
  SnapshotState s = State({Row(1, "a"), Row(3, "c")});
  EXPECT_TRUE(s.Contains(Row(1, "a")));
  EXPECT_FALSE(s.Contains(Row(2, "b")));
}

TEST(StateTest, ToStringLiteralForm) {
  SnapshotState s = State({Row(1, "a")});
  EXPECT_EQ(s.ToString(), "(id: int, name: string) {(1, \"a\")}");
  EXPECT_EQ(SnapshotState::Empty(MakeSchema({})).ToString(), "() {}");
}

// --- Predicates ---------------------------------------------------------------

TEST(PredicateTest, ComparisonEval) {
  Predicate p = Predicate::AttrCompare("id", CompareOp::kGt, Value::Int(1));
  EXPECT_FALSE(*p.Eval(TwoCol(), Row(1, "a")));
  EXPECT_TRUE(*p.Eval(TwoCol(), Row(2, "b")));
}

TEST(PredicateTest, AllComparisonOps) {
  auto eval = [](CompareOp op, int64_t lhs, int64_t rhs) {
    Predicate p = Predicate::Comparison(Operand::Const(Value::Int(lhs)), op,
                                        Operand::Const(Value::Int(rhs)));
    return *p.Eval(Schema(), Tuple{});
  };
  EXPECT_TRUE(eval(CompareOp::kEq, 1, 1));
  EXPECT_FALSE(eval(CompareOp::kEq, 1, 2));
  EXPECT_TRUE(eval(CompareOp::kNe, 1, 2));
  EXPECT_TRUE(eval(CompareOp::kLt, 1, 2));
  EXPECT_TRUE(eval(CompareOp::kLe, 2, 2));
  EXPECT_TRUE(eval(CompareOp::kGt, 3, 2));
  EXPECT_TRUE(eval(CompareOp::kGe, 2, 2));
  EXPECT_FALSE(eval(CompareOp::kGe, 1, 2));
}

TEST(PredicateTest, LogicalConnectivesShortCircuit) {
  Predicate id_pos = Predicate::AttrCompare("id", CompareOp::kGt,
                                            Value::Int(0));
  // The right operand would error (unknown attribute), but short-circuit
  // evaluation never reaches it.
  Predicate bad = Predicate::AttrCompare("zzz", CompareOp::kEq,
                                         Value::Int(0));
  Predicate or_pred = Predicate::Or(id_pos, bad);
  EXPECT_TRUE(*or_pred.Eval(TwoCol(), Row(5, "x")));
  Predicate and_pred = Predicate::And(Predicate::Not(id_pos), bad);
  EXPECT_FALSE(*and_pred.Eval(TwoCol(), Row(5, "x")));
}

TEST(PredicateTest, EvalErrorsOnUnknownAttribute) {
  Predicate p = Predicate::AttrCompare("zzz", CompareOp::kEq, Value::Int(0));
  auto r = p.Eval(TwoCol(), Row(1, "a"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kSchemaMismatch);
}

TEST(PredicateTest, ValidateCatchesTypeMismatch) {
  Predicate p = Predicate::AttrCompare("id", CompareOp::kEq,
                                       Value::String("x"));
  auto status = p.Validate(TwoCol());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kTypeMismatch);
  EXPECT_TRUE(Predicate::AttrCompare("id", CompareOp::kLt, Value::Double(1.5))
                  .Validate(TwoCol())
                  .ok());  // numeric mixing allowed
}

TEST(PredicateTest, AttributeNamesAndRename) {
  Predicate p = Predicate::And(
      Predicate::AttrCompare("id", CompareOp::kGt, Value::Int(0)),
      Predicate::Not(
          Predicate::AttrCompare("name", CompareOp::kEq,
                                 Value::String("x"))));
  EXPECT_EQ(p.AttributeNames(), (std::set<std::string>{"id", "name"}));
  Predicate renamed = p.RenameAttribute("id", "key");
  EXPECT_EQ(renamed.AttributeNames(), (std::set<std::string>{"key", "name"}));
}

TEST(PredicateTest, ToStringAndEquality) {
  Predicate p = Predicate::Or(
      Predicate::AttrCompare("id", CompareOp::kLe, Value::Int(3)),
      Predicate::False());
  EXPECT_EQ(p.ToString(), "(id <= 3 or false)");
  Predicate q = Predicate::Or(
      Predicate::AttrCompare("id", CompareOp::kLe, Value::Int(3)),
      Predicate::False());
  EXPECT_EQ(p, q);
  EXPECT_FALSE(p == Predicate::True());
}

// --- Operators -----------------------------------------------------------------

TEST(OperatorsTest, UnionMergesSets) {
  auto r = ops::Union(State({Row(1, "a"), Row(2, "b")}),
                      State({Row(2, "b"), Row(3, "c")}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, State({Row(1, "a"), Row(2, "b"), Row(3, "c")}));
}

TEST(OperatorsTest, UnionRequiresIdenticalSchemas) {
  SnapshotState other = *SnapshotState::Make(
      MakeSchema({{"x", ValueType::kInt}}), {Tuple{Value::Int(1)}});
  auto r = ops::Union(State({}), other);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kSchemaMismatch);
}

TEST(OperatorsTest, Difference) {
  auto r = ops::Difference(State({Row(1, "a"), Row(2, "b")}),
                           State({Row(2, "b"), Row(9, "z")}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, State({Row(1, "a")}));
}

TEST(OperatorsTest, ProductConcatenatesTuples) {
  SnapshotState nums = *SnapshotState::Make(
      MakeSchema({{"n", ValueType::kInt}}),
      {Tuple{Value::Int(1)}, Tuple{Value::Int(2)}});
  SnapshotState flags = *SnapshotState::Make(
      MakeSchema({{"f", ValueType::kBool}}), {Tuple{Value::Bool(true)}});
  auto r = ops::Product(nums, flags);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->schema().Names(), (std::vector<std::string>{"n", "f"}));
  EXPECT_TRUE(r->Contains(Tuple{Value::Int(1), Value::Bool(true)}));
}

TEST(OperatorsTest, ProductRejectsNameCollision) {
  EXPECT_FALSE(ops::Product(State({}), State({})).ok());
}

TEST(OperatorsTest, ProjectDropsDuplicates) {
  auto r = ops::Project(State({Row(1, "same"), Row(2, "same")}), {"name"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->tuples()[0], Tuple{Value::String("same")});
}

TEST(OperatorsTest, ProjectUnknownAttributeFails) {
  EXPECT_FALSE(ops::Project(State({}), {"ghost"}).ok());
}

TEST(OperatorsTest, SelectFilters) {
  Predicate p = Predicate::AttrCompare("id", CompareOp::kGe, Value::Int(2));
  auto r = ops::Select(State({Row(1, "a"), Row(2, "b"), Row(3, "c")}), p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, State({Row(2, "b"), Row(3, "c")}));
}

TEST(OperatorsTest, SelectValidatesPredicate) {
  Predicate p = Predicate::AttrCompare("ghost", CompareOp::kEq,
                                       Value::Int(0));
  EXPECT_FALSE(ops::Select(State({Row(1, "a")}), p).ok());
}

TEST(OperatorsTest, IntersectMatchesDifferenceIdentity) {
  SnapshotState a = State({Row(1, "a"), Row(2, "b"), Row(3, "c")});
  SnapshotState b = State({Row(2, "b"), Row(3, "c"), Row(4, "d")});
  auto direct = ops::Intersect(a, b);
  auto via_diff = ops::Difference(a, *ops::Difference(a, b));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_diff.ok());
  EXPECT_EQ(*direct, *via_diff);
}

TEST(OperatorsTest, ThetaJoinEqualsSelectOverProduct) {
  SnapshotState nums = *SnapshotState::Make(
      MakeSchema({{"n", ValueType::kInt}}),
      {Tuple{Value::Int(1)}, Tuple{Value::Int(2)}});
  SnapshotState more = *SnapshotState::Make(
      MakeSchema({{"m", ValueType::kInt}}),
      {Tuple{Value::Int(2)}, Tuple{Value::Int(3)}});
  Predicate eq = Predicate::Comparison(Operand::Attr("n"), CompareOp::kEq,
                                       Operand::Attr("m"));
  auto joined = ops::ThetaJoin(nums, more, eq);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 1u);
  EXPECT_TRUE(joined->Contains(Tuple{Value::Int(2), Value::Int(2)}));
}

TEST(OperatorsTest, NaturalJoinSharesColumns) {
  Schema left = MakeSchema({{"id", ValueType::kInt},
                            {"dept", ValueType::kString}});
  Schema right = MakeSchema({{"dept", ValueType::kString},
                             {"floor", ValueType::kInt}});
  SnapshotState l = *SnapshotState::Make(
      left, {Tuple{Value::Int(1), Value::String("cs")},
             Tuple{Value::Int(2), Value::String("ee")}});
  SnapshotState r = *SnapshotState::Make(
      right, {Tuple{Value::String("cs"), Value::Int(3)}});
  auto joined = ops::NaturalJoin(l, r);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->schema().Names(),
            (std::vector<std::string>{"id", "dept", "floor"}));
  EXPECT_EQ(joined->size(), 1u);
  EXPECT_TRUE(joined->Contains(
      Tuple{Value::Int(1), Value::String("cs"), Value::Int(3)}));
}

TEST(OperatorsTest, NaturalJoinWithNoSharedAttrsIsProduct) {
  SnapshotState nums = *SnapshotState::Make(
      MakeSchema({{"n", ValueType::kInt}}), {Tuple{Value::Int(1)}});
  SnapshotState flags = *SnapshotState::Make(
      MakeSchema({{"f", ValueType::kBool}}), {Tuple{Value::Bool(false)}});
  auto joined = ops::NaturalJoin(nums, flags);
  auto product = ops::Product(nums, flags);
  ASSERT_TRUE(joined.ok());
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(*joined, *product);
}

TEST(OperatorsTest, RenameChangesSchemaOnly) {
  auto r = ops::Rename(State({Row(1, "a")}), "id", "key");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().Names(), (std::vector<std::string>{"key", "name"}));
  EXPECT_EQ(r->tuples()[0], Row(1, "a"));
}

// --- Algebraic laws on random states (experiment E1 correctness side) --------

class AlgebraLawTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST_P(AlgebraLawTest, UnionCommutesAndAssociates) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 20);
  SnapshotState b = gen.RandomState(schema, 20);
  SnapshotState c = gen.RandomState(schema, 20);
  EXPECT_EQ(*ops::Union(a, b), *ops::Union(b, a));
  EXPECT_EQ(*ops::Union(*ops::Union(a, b), c),
            *ops::Union(a, *ops::Union(b, c)));
}

TEST_P(AlgebraLawTest, SelectCommutes) {
  workload::Generator gen(GetParam() + 1000);
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 30);
  Predicate f = gen.RandomPredicate(schema);
  Predicate g = gen.RandomPredicate(schema);
  EXPECT_EQ(*ops::Select(*ops::Select(a, f), g),
            *ops::Select(*ops::Select(a, g), f));
}

TEST_P(AlgebraLawTest, SelectMergesIntoConjunction) {
  workload::Generator gen(GetParam() + 2000);
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 30);
  Predicate f = gen.RandomPredicate(schema);
  Predicate g = gen.RandomPredicate(schema);
  EXPECT_EQ(*ops::Select(*ops::Select(a, g), f),
            *ops::Select(a, Predicate::And(f, g)));
}

TEST_P(AlgebraLawTest, SelectDistributesOverUnionAndDifference) {
  workload::Generator gen(GetParam() + 3000);
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 25);
  SnapshotState b = gen.RandomState(schema, 25);
  Predicate f = gen.RandomPredicate(schema);
  EXPECT_EQ(*ops::Select(*ops::Union(a, b), f),
            *ops::Union(*ops::Select(a, f), *ops::Select(b, f)));
  EXPECT_EQ(*ops::Select(*ops::Difference(a, b), f),
            *ops::Difference(*ops::Select(a, f), *ops::Select(b, f)));
}

TEST_P(AlgebraLawTest, DeMorganOnPredicates) {
  workload::Generator gen(GetParam() + 4000);
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 30);
  Predicate f = gen.RandomPredicate(schema);
  Predicate g = gen.RandomPredicate(schema);
  EXPECT_EQ(*ops::Select(a, Predicate::Not(Predicate::And(f, g))),
            *ops::Select(a, Predicate::Or(Predicate::Not(f),
                                          Predicate::Not(g))));
}

TEST_P(AlgebraLawTest, SelectionSplitsStateIntoPartition) {
  workload::Generator gen(GetParam() + 5000);
  const Schema schema = gen.RandomSchema();
  SnapshotState a = gen.RandomState(schema, 30);
  Predicate f = gen.RandomPredicate(schema);
  SnapshotState kept = *ops::Select(a, f);
  SnapshotState dropped = *ops::Select(a, Predicate::Not(f));
  EXPECT_EQ(*ops::Union(kept, dropped), a);
  EXPECT_TRUE(ops::Intersect(kept, dropped)->empty());
}

}  // namespace
}  // namespace ttra
