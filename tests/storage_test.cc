#include <gtest/gtest.h>

#include "rollback/commands.h"
#include "storage/logs.h"
#include "storage/serialize.h"
#include "storage/state_log.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Schema OneCol() { return *Schema::Make({{"n", ValueType::kInt}}); }

SnapshotState Nums(std::vector<int64_t> values) {
  std::vector<Tuple> tuples;
  tuples.reserve(values.size());
  for (int64_t v : values) tuples.push_back(Tuple{Value::Int(v)});
  return *SnapshotState::Make(OneCol(), std::move(tuples));
}

// --- Per-engine unit behaviour ------------------------------------------------

class EngineTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  std::unique_ptr<StateLog<SnapshotState>> MakeLog(
      size_t cache_capacity = kDefaultFindStateCacheCapacity) {
    return MakeStateLog<SnapshotState>(GetParam(), /*checkpoint_interval=*/4,
                                       cache_capacity);
  }
};

INSTANTIATE_TEST_SUITE_P(Kinds, EngineTest,
                         ::testing::Values(StorageKind::kFullCopy,
                                           StorageKind::kDelta,
                                           StorageKind::kCheckpoint,
                                           StorageKind::kReverseDelta),
                         [](const auto& info) {
                           switch (info.param) {
                             case StorageKind::kFullCopy:
                               return std::string("FullCopy");
                             case StorageKind::kDelta:
                               return std::string("Delta");
                             case StorageKind::kCheckpoint:
                               return std::string("Checkpoint");
                             case StorageKind::kReverseDelta:
                               return std::string("ReverseDelta");
                           }
                           return std::string("Unknown");
                         });

TEST_P(EngineTest, EmptyLogHasNoStates) {
  auto log = MakeLog();
  EXPECT_EQ(log->size(), 0u);
  EXPECT_EQ(log->StateAt(0), nullptr);
  EXPECT_EQ(log->StateAt(1000), nullptr);
}

TEST_P(EngineTest, AppendAndFindState) {
  auto log = MakeLog();
  ASSERT_TRUE(log->Append(Nums({1}), 2).ok());
  ASSERT_TRUE(log->Append(Nums({1, 2}), 5).ok());
  ASSERT_TRUE(log->Append(Nums({2}), 9).ok());
  EXPECT_EQ(log->size(), 3u);
  EXPECT_EQ(log->StateAt(1), nullptr);
  EXPECT_EQ(*log->StateAt(2), Nums({1}));
  EXPECT_EQ(*log->StateAt(4), Nums({1}));
  EXPECT_EQ(*log->StateAt(5), Nums({1, 2}));
  EXPECT_EQ(*log->StateAt(8), Nums({1, 2}));
  EXPECT_EQ(*log->StateAt(9), Nums({2}));
  EXPECT_EQ(*log->StateAt(UINT64_MAX), Nums({2}));
}

TEST_P(EngineTest, AppendRejectsNonIncreasingTxn) {
  auto log = MakeLog();
  ASSERT_TRUE(log->Append(Nums({1}), 5).ok());
  EXPECT_FALSE(log->Append(Nums({2}), 5).ok());
  EXPECT_FALSE(log->Append(Nums({2}), 3).ok());
  EXPECT_EQ(log->size(), 1u);
}

TEST_P(EngineTest, ReplaceLastKeepsSingleState) {
  auto log = MakeLog();
  ASSERT_TRUE(log->ReplaceLast(Nums({1}), 2).ok());
  ASSERT_TRUE(log->ReplaceLast(Nums({7}), 3).ok());
  EXPECT_EQ(log->size(), 1u);
  EXPECT_EQ(*log->StateAt(3), Nums({7}));
  EXPECT_EQ(log->TxnAt(0), 3u);
}

TEST_P(EngineTest, CloneIsDeep) {
  auto log = MakeLog();
  ASSERT_TRUE(log->Append(Nums({1}), 2).ok());
  auto copy = log->Clone();
  ASSERT_TRUE(copy->Append(Nums({1, 2}), 3).ok());
  EXPECT_EQ(log->size(), 1u);
  EXPECT_EQ(copy->size(), 2u);
}

TEST_P(EngineTest, HandlesSchemeChangeViaRebase) {
  auto log = MakeLog();
  ASSERT_TRUE(log->Append(Nums({1, 2}), 2).ok());
  Schema wider = *Schema::Make({{"n", ValueType::kInt},
                                {"s", ValueType::kString}});
  SnapshotState wide = *SnapshotState::Make(
      wider, {Tuple{Value::Int(1), Value::String("x")}});
  ASSERT_TRUE(log->Append(wide, 3).ok());
  EXPECT_EQ(*log->StateAt(2), Nums({1, 2}));
  EXPECT_EQ(*log->StateAt(3), wide);
}

TEST_P(EngineTest, RepeatedFindStateIsStableAndCached) {
  auto cached = MakeLog(/*cache_capacity=*/4);
  auto uncached = MakeLog(/*cache_capacity=*/0);
  workload::Generator gen(11);
  SnapshotState state = gen.RandomState(OneCol(), 12);
  for (TransactionNumber txn = 2; txn <= 40; txn += 2) {
    ASSERT_TRUE(cached->Append(state, txn).ok());
    ASSERT_TRUE(uncached->Append(state, txn).ok());
    state = gen.MutateState(state, 0.4);
  }
  // Every probe agrees with the cache disabled, repeatedly (the second
  // probe of each txn exercises the cache hit path).
  for (int round = 0; round < 3; ++round) {
    for (TransactionNumber probe = 0; probe <= 42; ++probe) {
      auto a = cached->StateAt(probe);
      auto b = uncached->StateAt(probe);
      ASSERT_EQ(a != nullptr, b != nullptr) << "txn " << probe;
      if (a != nullptr) {
        EXPECT_EQ(*a, *b) << "txn " << probe;
      }
    }
  }
  // Repeated probes of the same transaction share one reconstruction.
  auto first = cached->StateAt(20);
  auto second = cached->StateAt(20);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
}

TEST_P(EngineTest, CacheInvalidatedByAppendAndReplaceLast) {
  auto log = MakeLog(/*cache_capacity=*/4);
  ASSERT_TRUE(log->Append(Nums({1}), 2).ok());
  ASSERT_TRUE(log->Append(Nums({1, 2}), 4).ok());
  EXPECT_EQ(*log->StateAt(2), Nums({1}));  // populate the cache
  EXPECT_EQ(*log->StateAt(4), Nums({1, 2}));
  ASSERT_TRUE(log->Append(Nums({3}), 6).ok());
  EXPECT_EQ(*log->StateAt(2), Nums({1}));
  EXPECT_EQ(*log->StateAt(4), Nums({1, 2}));
  EXPECT_EQ(*log->StateAt(6), Nums({3}));
  ASSERT_TRUE(log->ReplaceLast(Nums({9}), 7).ok());
  EXPECT_EQ(log->size(), 1u);
  EXPECT_EQ(log->StateAt(6), nullptr);
  EXPECT_EQ(*log->StateAt(7), Nums({9}));
}

// --- Engine equivalence under random command streams (experiment E3) ----------

class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST_P(EngineEquivalenceTest, AllEnginesAgreeOnEveryTransaction) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  auto full = MakeStateLog<SnapshotState>(StorageKind::kFullCopy);
  auto delta = MakeStateLog<SnapshotState>(StorageKind::kDelta);
  auto ckpt = MakeStateLog<SnapshotState>(StorageKind::kCheckpoint, 5);
  auto rev = MakeStateLog<SnapshotState>(StorageKind::kReverseDelta);

  SnapshotState state = gen.RandomState(schema, 25);
  TransactionNumber txn = 1;
  std::vector<TransactionNumber> txns;
  for (int i = 0; i < 40; ++i) {
    txn += 1 + gen.rng().Uniform(3);  // gaps in transaction numbers
    ASSERT_TRUE(full->Append(state, txn).ok());
    ASSERT_TRUE(delta->Append(state, txn).ok());
    ASSERT_TRUE(ckpt->Append(state, txn).ok());
    ASSERT_TRUE(rev->Append(state, txn).ok());
    txns.push_back(txn);
    state = gen.MutateState(state, 0.35);
  }
  // Probe every recorded txn, gaps, and out-of-range values.
  for (TransactionNumber probe = 0; probe <= txn + 2; ++probe) {
    auto a = full->StateAt(probe);
    auto b = delta->StateAt(probe);
    auto c = ckpt->StateAt(probe);
    auto d = rev->StateAt(probe);
    EXPECT_EQ(a != nullptr, b != nullptr);
    EXPECT_EQ(a != nullptr, c != nullptr);
    EXPECT_EQ(a != nullptr, d != nullptr);
    if (a != nullptr) {
      EXPECT_EQ(*a, *b) << "delta diverged at txn " << probe;
      EXPECT_EQ(*a, *c) << "checkpoint diverged at txn " << probe;
      EXPECT_EQ(*a, *d) << "reverse-delta diverged at txn " << probe;
    }
  }
}

TEST_P(EngineEquivalenceTest, HistoricalEnginesAgree) {
  workload::Generator gen(GetParam() + 777);
  const Schema schema = gen.RandomSchema();
  auto full = MakeStateLog<HistoricalState>(StorageKind::kFullCopy);
  auto delta = MakeStateLog<HistoricalState>(StorageKind::kDelta);
  auto ckpt = MakeStateLog<HistoricalState>(StorageKind::kCheckpoint, 3);

  HistoricalState state = gen.RandomHistoricalState(schema, 15);
  TransactionNumber txn = 1;
  for (int i = 0; i < 25; ++i) {
    txn += 1 + gen.rng().Uniform(2);
    ASSERT_TRUE(full->Append(state, txn).ok());
    ASSERT_TRUE(delta->Append(state, txn).ok());
    ASSERT_TRUE(ckpt->Append(state, txn).ok());
    state = gen.MutateState(state, 0.3);
  }
  for (TransactionNumber probe = 0; probe <= txn + 1; ++probe) {
    auto a = full->StateAt(probe);
    auto b = delta->StateAt(probe);
    auto c = ckpt->StateAt(probe);
    ASSERT_EQ(a != nullptr, b != nullptr);
    ASSERT_EQ(a != nullptr, c != nullptr);
    if (a != nullptr) {
      EXPECT_EQ(*a, *b);
      EXPECT_EQ(*a, *c);
    }
  }
}

TEST_P(EngineEquivalenceTest, DatabasesWithDifferentEnginesAgree) {
  workload::Generator gen(GetParam() + 31);
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback, 30,
                                          20, 0.3);
  Database full_db(DatabaseOptions{StorageKind::kFullCopy, 16});
  Database delta_db(DatabaseOptions{StorageKind::kDelta, 16});
  Database ckpt_db(DatabaseOptions{StorageKind::kCheckpoint, 4});
  ASSERT_TRUE(ApplySentence(full_db, commands).ok());
  ASSERT_TRUE(ApplySentence(delta_db, commands).ok());
  ASSERT_TRUE(ApplySentence(ckpt_db, commands).ok());
  for (TransactionNumber probe = 0; probe <= full_db.transaction_number() + 1;
       ++probe) {
    auto a = full_db.Rollback("r", probe);
    auto b = delta_db.Rollback("r", probe);
    auto c = ckpt_db.Rollback("r", probe);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, *c);
  }
}

TEST_P(EngineEquivalenceTest, DeltaUsesLessSpaceOnSmallChanges) {
  workload::Generator gen(GetParam() + 1234);
  const Schema schema = gen.RandomSchema(3);
  auto full = MakeStateLog<SnapshotState>(StorageKind::kFullCopy);
  auto delta = MakeStateLog<SnapshotState>(StorageKind::kDelta);
  SnapshotState state = gen.RandomState(schema, 200);
  TransactionNumber txn = 1;
  for (int i = 0; i < 30; ++i) {
    ++txn;
    ASSERT_TRUE(full->Append(state, txn).ok());
    ASSERT_TRUE(delta->Append(state, txn).ok());
    state = gen.MutateState(state, 0.02);  // 2% churn
  }
  // The paper's storage argument: full copies blow up, deltas do not.
  EXPECT_LT(delta->ApproxBytes(), full->ApproxBytes() / 4);
}

// --- Serialization -----------------------------------------------------------

TEST(SerializeTest, ValueRoundTrip) {
  const std::vector<Value> values = {
      Value::Int(-42),     Value::Double(3.25), Value::String("hi\nthere"),
      Value::Bool(true),   Value::Bool(false),  Value::Time(-7),
      Value::String(""),
  };
  for (const Value& v : values) {
    std::string buf;
    EncodeValue(v, buf);
    ByteReader reader(buf);
    auto decoded = DecodeValue(reader);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(SerializeTest, SnapshotStateRoundTrip) {
  workload::Generator gen(5);
  const Schema schema = gen.RandomSchema();
  SnapshotState state = gen.RandomState(schema, 30);
  std::string buf;
  EncodeSnapshotState(state, buf);
  ByteReader reader(buf);
  auto decoded = DecodeSnapshotState(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, state);
}

TEST(SerializeTest, HistoricalStateRoundTrip) {
  workload::Generator gen(6);
  const Schema schema = gen.RandomSchema();
  HistoricalState state = gen.RandomHistoricalState(schema, 20);
  std::string buf;
  EncodeHistoricalState(state, buf);
  ByteReader reader(buf);
  auto decoded = DecodeHistoricalState(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, state);
}

TEST(SerializeTest, SequenceRoundTripAcrossEngines) {
  workload::Generator gen(7);
  const Schema schema = gen.RandomSchema();
  auto log = MakeStateLog<SnapshotState>(StorageKind::kDelta);
  SnapshotState state = gen.RandomState(schema, 20);
  for (TransactionNumber txn = 2; txn < 22; txn += 2) {
    ASSERT_TRUE(log->Append(state, txn).ok());
    state = gen.MutateState(state, 0.3);
  }
  auto sequence = MaterializeSequence(*log);
  std::string encoded = EncodeStateSequence(sequence);
  auto decoded = DecodeStateSequence<SnapshotState>(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), sequence.size());
  for (size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ((*decoded)[i], sequence[i]);
  }
  // Rebuild into a different engine and verify FINDSTATE agreement.
  auto rebuilt = RebuildLog(*decoded, StorageKind::kCheckpoint, 3);
  ASSERT_TRUE(rebuilt.ok());
  for (TransactionNumber probe = 0; probe < 25; ++probe) {
    auto a = log->StateAt(probe);
    auto b = (*rebuilt)->StateAt(probe);
    ASSERT_EQ(a != nullptr, b != nullptr);
    if (a != nullptr) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(SerializeTest, DetectsCorruptionEverywhere) {
  workload::Generator gen(8);
  const Schema schema = gen.RandomSchema(2);
  std::vector<std::pair<SnapshotState, TransactionNumber>> sequence = {
      {gen.RandomState(schema, 5), 2},
      {gen.RandomState(schema, 6), 4},
  };
  const std::string good = EncodeStateSequence(sequence);
  ASSERT_TRUE(DecodeStateSequence<SnapshotState>(good).ok());

  // Flip one byte at a time across the whole frame: decoding must either
  // fail cleanly or (never) succeed with different data — it must not
  // crash or misread silently.
  int failures = 0;
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    auto decoded = DecodeStateSequence<SnapshotState>(bad);
    if (!decoded.ok()) {
      ++failures;
    } else {
      // A successful decode of a corrupted frame must match the original
      // (the flipped byte was in a don't-care position — none exist in
      // this format, so this should not happen).
      ADD_FAILURE() << "corrupted byte " << i << " decoded successfully";
    }
  }
  EXPECT_EQ(failures, static_cast<int>(good.size()));
}

TEST(SerializeTest, TruncationDetected) {
  workload::Generator gen(9);
  const Schema schema = gen.RandomSchema(2);
  std::vector<std::pair<SnapshotState, TransactionNumber>> sequence = {
      {gen.RandomState(schema, 5), 2}};
  const std::string good = EncodeStateSequence(sequence);
  for (size_t keep = 0; keep < good.size(); ++keep) {
    auto decoded =
        DecodeStateSequence<SnapshotState>(std::string_view(good).substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << keep << " not caught";
  }
}

TEST(SerializeTest, RejectsBadMagicAndVersion) {
  std::vector<std::pair<SnapshotState, TransactionNumber>> sequence;
  std::string good = EncodeStateSequence(sequence);
  std::string bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(DecodeStateSequence<SnapshotState>(bad_magic).status().code(),
            ErrorCode::kCorruption);
  std::string bad_version = good;
  bad_version[8] = 99;
  EXPECT_EQ(DecodeStateSequence<SnapshotState>(bad_version).status().code(),
            ErrorCode::kCorruption);
}

TEST(SerializeTest, ApproxSizeGrowsWithContent) {
  EXPECT_GT(ApproxSize(Value::String("a long string value")),
            ApproxSize(Value::Int(1)));
  EXPECT_GT(ApproxSize(Tuple{Value::Int(1), Value::Int(2)}),
            ApproxSize(Tuple{Value::Int(1)}));
}

}  // namespace
}  // namespace ttra
