// Multi-threaded stress tests for the documented concurrency contracts:
//
//  * FindStateCache is thread-safe on its own (readers probe one relation
//    log concurrently while SerialExecutor holds only a shared lock);
//  * SerialExecutor serializes writers and runs readers concurrently, so
//    StateLog::StateAt (replay + cache fill) races only against other
//    readers, never against Append;
//  * states are copy-on-write — Snapshot()/Clone() hand immutable reps to
//    other threads, which evaluate operators on them concurrently.
//
// The assertions are deliberately light: these tests earn their keep under
// ThreadSanitizer (cmake -DTTRA_SANITIZE=thread; tools/check.sh --tsan),
// where any data race in the cache, the replay engines, or the shared-rep
// refcounting is a hard failure. They still run (fast) unsanitized.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "rollback/concurrent_executor.h"
#include "rollback/serial_executor.h"
#include "snapshot/operators.h"
#include "storage/logs.h"

namespace ttra {
namespace {

constexpr int kReaderThreads = 4;
constexpr int kWriterCommits = 64;

Schema StressSchema() {
  return *Schema::Make({{"id", ValueType::kInt}, {"v", ValueType::kInt}});
}

SnapshotState StateOfSize(size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple{Value::Int(static_cast<int64_t>(i)),
                         Value::Int(static_cast<int64_t>(i * i))});
  }
  return *SnapshotState::Make(StressSchema(), std::move(rows));
}

TEST(TsanStressTest, FindStateCacheConcurrentProbesAndFills) {
  const FindStateCache<SnapshotState> cache(/*capacity=*/4);
  auto shared = std::make_shared<const SnapshotState>(StateOfSize(3));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaderThreads + 1);
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&cache, &shared, &mismatches, t] {
      for (int i = 0; i < 500; ++i) {
        const size_t index = static_cast<size_t>((t * 31 + i) % 8);
        cache.Put(index, shared);
        if (auto hit = cache.Get(index); hit && hit->size() != 3) {
          mismatches.fetch_add(1);
        }
        if (auto floor = cache.Floor(index);
            floor && floor->second->size() != 3) {
          mismatches.fetch_add(1);
        }
        if (auto ceil = cache.Ceil(index); ceil && ceil->second->size() != 3) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // One thread keeps invalidating, as Append/ReplaceLast would.
  threads.emplace_back([&cache] {
    for (int i = 0; i < 500; ++i) cache.Clear();
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

/// One serialized writer appends states while readers replay historical
/// states through the engine's FindStateCache. Run for every storage
/// engine: full-copy shares entries directly; delta/checkpoint/
/// reverse-delta replay and fill the cache concurrently.
void HammerStateLog(StorageKind storage) {
  SerialExecutor exec(DatabaseOptions{.storage = storage,
                                      .checkpoint_interval = 4,
                                      .findstate_cache_capacity = 4});
  ASSERT_TRUE(exec.Submit([](Database& db) {
                    return db.DefineRelation("r", RelationType::kRollback,
                                             StressSchema());
                  })
                  .ok());

  // First commit lands before the readers start, so every probe has a
  // committed modify_state to aim at. Each reader then performs a FIXED
  // number of probes (rather than spinning until the writer finishes):
  // the shared_mutex has no fairness guarantee, and under the delta
  // engines replaying readers can otherwise starve the writer forever.
  ASSERT_TRUE(
      exec.Submit([](Database& db) { return db.ModifyState("r", StateOfSize(1)); })
          .ok());

  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&exec, &reader_errors, t] {
      uint64_t salt = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < 200; ++i) {
        const TransactionNumber now = exec.transaction_number();
        // Pseudo-random committed transaction in [2, now]: modify_state
        // commits start at txn 2, and commit c leaves c tuples... so the
        // state as of txn has txn - 1 tuples.
        salt = salt * 6364136223846793005u + 1442695040888963407u;
        const TransactionNumber txn = 2 + (salt >> 33) % (now - 1);
        auto state = exec.Rollback("r", txn);
        if (!state.ok() || state->size() != txn - 1) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }

  for (int commit = 2; commit <= kWriterCommits; ++commit) {
    ASSERT_TRUE(exec.Submit([commit](Database& db) {
                      return db.ModifyState(
                          "r", StateOfSize(static_cast<size_t>(commit)));
                    })
                    .ok());
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(exec.transaction_number(),
            static_cast<TransactionNumber>(kWriterCommits + 1));
}

TEST(TsanStressTest, StateLogReadersVsWriterFullCopy) {
  HammerStateLog(StorageKind::kFullCopy);
}
TEST(TsanStressTest, StateLogReadersVsWriterDelta) {
  HammerStateLog(StorageKind::kDelta);
}
TEST(TsanStressTest, StateLogReadersVsWriterCheckpoint) {
  HammerStateLog(StorageKind::kCheckpoint);
}
TEST(TsanStressTest, StateLogReadersVsWriterReverseDelta) {
  HammerStateLog(StorageKind::kReverseDelta);
}

TEST(TsanStressTest, CowStatesSharedAcrossThreads) {
  SerialExecutor exec;
  ASSERT_TRUE(exec.Submit([](Database& db) {
                    TTRA_RETURN_IF_ERROR(db.DefineRelation(
                        "r", RelationType::kRollback, StressSchema()));
                    return db.ModifyState("r", StateOfSize(32));
                  })
                  .ok());
  // Every thread gets its own Database copy, but all copies share the same
  // immutable state reps; operator evaluation touches them concurrently.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([db = exec.Snapshot(), &errors] {
      for (int i = 0; i < 100; ++i) {
        auto state = db.Rollback("r");
        if (!state.ok()) {
          errors.fetch_add(1);
          continue;
        }
        auto doubled = snapshot_ops::Union(*state, *state);
        auto projected = snapshot_ops::Project(*state, {"id"});
        if (!doubled.ok() || doubled->size() != 32 || !projected.ok() ||
            projected->size() != 32) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(TsanStressTest, LanguageEvalOnSharedSnapshots) {
  SerialExecutor exec;
  ASSERT_TRUE(exec.Submit([](Database& db) {
                    return lang::Run(R"(
      define_relation(emp, rollback, (name: string, salary: int));
      modify_state(emp, (name: string, salary: int)
                        {("ed", 100), ("amy", 120), ("bob", 90)});
    )",
                                     db);
                  })
                  .ok());
  auto program = lang::ParseProgram(
      "show(project[name](select[salary > 95](rho(emp, inf))))");
  ASSERT_TRUE(program.ok());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&exec, &program, &errors] {
      for (int i = 0; i < 100; ++i) {
        // Readers share the executor (shared lock) AND the parsed AST,
        // whose nodes are shared_ptr-counted across threads.
        Status status = exec.Read([&](const Database& db) {
          std::vector<lang::StateValue> outputs;
          Database view = db.Clone();  // clones share immutable state reps
          TTRA_RETURN_IF_ERROR(
              lang::ExecProgram(*program, view, &outputs));
          if (outputs.size() != 1 ||
              std::get<SnapshotState>(outputs[0]).size() != 2) {
            return InternalError("wrong query result");
          }
          return Status::Ok();
        });
        if (!status.ok()) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

/// The full concurrent front-end under TSan: producer threads race the
/// group-commit writer thread through the bounded queue, readers open
/// pinned sessions while snapshots are republished, and a checkpointer
/// competes for the commit lock. All waiting is condvar/future-based
/// (BoundedQueue, Drain, promise futures) — no sleeps, fixed iteration
/// counts — so the test is deterministic in coverage and cheap
/// unsanitized.
TEST(TsanStressTest, ConcurrentExecutorProducersReadersCheckpointer) {
  constexpr int kProducerThreads = 2;
  constexpr int kCommitsPerProducer = 32;

  InMemoryEnv env;
  ConcurrentOptions options;
  options.durable.db.findstate_cache_capacity = 4;
  options.group_commit.max_batch = 8;
  options.group_commit.max_latency = std::chrono::microseconds(100);
  ConcurrentExecutor exec(&env, "db", options);
  ASSERT_TRUE(exec.Start().ok());
  ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                      "r", RelationType::kRollback, StressSchema()}})
                  .ok());
  ASSERT_TRUE(
      exec.Submit(Command{ModifySnapshotCmd{"r", StateOfSize(1)}}).ok());

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducerThreads + kReaderThreads + 1);
  for (int p = 0; p < kProducerThreads; ++p) {
    threads.emplace_back([&exec, &errors, p] {
      for (int i = 0; i < kCommitsPerProducer; ++i) {
        std::vector<Command> sentence;
        sentence.push_back(ModifySnapshotCmd{
            "r", StateOfSize(static_cast<size_t>((p + i) % 5))});
        auto txn = exec.SubmitAsync(std::move(sentence)).get();
        if (!txn.ok()) errors.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&exec, &errors, t] {
      uint64_t salt = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < 200; ++i) {
        Session session = exec.OpenSession();
        salt = salt * 6364136223846793005u + 1442695040888963407u;
        // Any committed modify_state (txn >= 2) up to the pin must
        // answer; beyond the pin must not.
        const TransactionNumber txn =
            2 + (salt >> 33) % (session.epoch() - 1);
        auto state = session.Rollback("r", txn);
        if (!state.ok() || state->size() >= 5) errors.fetch_add(1);
        if (session.Rollback("r", session.epoch() + 1).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Checkpointer: truncates the WAL under the commit lock while the
  // writer is group-committing and readers hold pinned snapshots.
  threads.emplace_back([&exec, &errors] {
    for (int i = 0; i < 8; ++i) {
      if (!exec.Checkpoint().ok()) errors.fetch_add(1);
    }
  });

  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(exec.Drain().ok());
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(exec.healthy());
  // Every modify_state succeeds and bumps the transaction number by one:
  // define + seed + all produced commits, in SOME serial order.
  EXPECT_EQ(exec.transaction_number(),
            static_cast<TransactionNumber>(
                2 + kProducerThreads * kCommitsPerProducer));
  ConcurrentExecutor::Stats stats = exec.stats();
  EXPECT_EQ(stats.commits,
            static_cast<uint64_t>(2 + kProducerThreads * kCommitsPerProducer));
  EXPECT_LE(stats.wal.syncs, stats.wal.records);
  exec.Stop();
}

}  // namespace
}  // namespace ttra
