#include <gtest/gtest.h>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace ttra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = SchemaMismatchError("bad schema");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kSchemaMismatch);
  EXPECT_EQ(s.message(), "bad schema");
  EXPECT_EQ(s.ToString(), "schema-mismatch: bad schema");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(UnknownIdentifierError("x").code(), ErrorCode::kUnknownIdentifier);
  EXPECT_EQ(AlreadyDefinedError("x").code(), ErrorCode::kAlreadyDefined);
  EXPECT_EQ(SchemaMismatchError("x").code(), ErrorCode::kSchemaMismatch);
  EXPECT_EQ(TypeMismatchError("x").code(), ErrorCode::kTypeMismatch);
  EXPECT_EQ(InvalidRollbackError("x").code(), ErrorCode::kInvalidRollback);
  EXPECT_EQ(ParseError("x").code(), ErrorCode::kParseError);
  EXPECT_EQ(CorruptionError("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(InvalidArgumentError("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "ok");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kCorruption), "corruption");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInvalidRollback), "invalid-rollback");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParseError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParseError);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TTRA_ASSIGN_OR_RETURN(int half, Half(x));
  TTRA_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, AlphaNumLengthAndCharset) {
  Rng rng(11);
  const std::string s = rng.AlphaNum(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  const std::string raw = "line\nwith \"quotes\" and \\slash\t\x01";
  EXPECT_EQ(UnescapeString(EscapeString(raw)), raw);
}

TEST(StringUtilTest, EscapeProducesPrintableForms) {
  EXPECT_EQ(EscapeString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeString("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeString("\x01"), "\\x01");
}

TEST(StringUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_TRUE(IsIdentifier("CamelCase9"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

}  // namespace
}  // namespace ttra
