#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "rollback/durable_executor.h"
#include "rollback/persistence.h"
#include "rollback/vacuum.h"
#include "storage/env.h"
#include "storage/salvage.h"
#include "storage/wal.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Database BuildLedger() {
  auto db = lang::EvalSentence(R"(
    define_relation(log, rollback, (n: int));
    modify_state(log, (n: int) {(1)});
    modify_state(log, (n: int) {(1), (2)});
    modify_state(log, (n: int) {(1), (2), (3)});
    modify_state(log, (n: int) {(1), (2), (3), (4)});
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return *std::move(db);
}

TEST(VacuumTest, SplitsHistoryAtCutoff) {
  Database db = BuildLedger();  // states at txns 2, 3, 4, 5
  auto result = VacuumRelation(db, "log", /*before_txn=*/4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->archived_states, 2u);  // txns 2 and 3
  EXPECT_FALSE(result->archive.empty());
  // Vacuuming is itself a transaction.
  EXPECT_EQ(db.transaction_number(), 6u);
  // The online relation kept txns 4 and 5.
  const Relation* log = db.Find("log");
  ASSERT_EQ(log->history_length(), 2u);
  EXPECT_EQ(log->TxnAt(0), 4u);
  EXPECT_EQ(*db.Rollback("log"), *db.Rollback("log", 5));
  // Before the cutoff the online history is empty (as if it began at 4).
  EXPECT_TRUE(db.Rollback("log", 3)->empty());
}

TEST(VacuumTest, NothingToArchiveIsNoOp) {
  Database db = BuildLedger();
  auto result = VacuumRelation(db, "log", /*before_txn=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->archived_states, 0u);
  EXPECT_TRUE(result->archive.empty());
  EXPECT_EQ(db.transaction_number(), 5u);  // no transaction consumed
  EXPECT_EQ(db.Find("log")->history_length(), 4u);
}

TEST(VacuumTest, TypeRules) {
  auto db = lang::EvalSentence(
      "define_relation(s, snapshot, (n: int));");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(VacuumRelation(*db, "s", 10).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(VacuumRelation(*db, "ghost", 10).status().code(),
            ErrorCode::kUnknownIdentifier);
}

TEST(VacuumTest, AttachRestoresFullHistory) {
  Database db = BuildLedger();
  Database original = db.Clone();
  auto result = VacuumRelation(db, "log", 4);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(AttachArchive(db, "log", result->archive).ok());
  // Every pre-vacuum rollback answer is restored.
  for (TransactionNumber txn = 0; txn <= 5; ++txn) {
    EXPECT_EQ(*db.Rollback("log", txn), *original.Rollback("log", txn))
        << "txn " << txn;
  }
  EXPECT_EQ(db.Find("log")->history_length(), 4u);
}

TEST(VacuumTest, AttachValidation) {
  Database db = BuildLedger();
  auto result = VacuumRelation(db, "log", 4);
  ASSERT_TRUE(result.ok());
  // Wrong relation.
  ASSERT_TRUE(
      db.DefineRelation("other", RelationType::kRollback,
                        *Schema::Make({{"n", ValueType::kInt}}))
          .ok());
  EXPECT_EQ(AttachArchive(db, "other", result->archive).code(),
            ErrorCode::kInvalidArgument);
  // Corrupted archive.
  std::string bad = result->archive;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_FALSE(AttachArchive(db, "log", bad).ok());
  // Bad magic.
  std::string bad_magic = result->archive;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(AttachArchive(db, "log", bad_magic).code(),
            ErrorCode::kCorruption);
  // Double attach overlaps.
  ASSERT_TRUE(AttachArchive(db, "log", result->archive).ok());
  EXPECT_EQ(AttachArchive(db, "log", result->archive).code(),
            ErrorCode::kInvalidArgument);
}

TEST(VacuumTest, WorksOnTemporalRelations) {
  auto db = lang::EvalSentence(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 5)});
    modify_state(t, (n: int) {(1) @ [0, 9)});
    modify_state(t, (n: int) {(1) @ [0, 9), (2) @ [4, 6)});
  )");
  ASSERT_TRUE(db.ok());
  Database original = db->Clone();
  auto result = VacuumRelation(*db, "t", 4);  // archive txns 2 and 3
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->archived_states, 2u);
  EXPECT_EQ(db->Find("t")->history_length(), 1u);
  EXPECT_TRUE(db->RollbackHistorical("t", 3)->empty());
  ASSERT_TRUE(AttachArchive(*db, "t", result->archive).ok());
  for (TransactionNumber txn = 0; txn <= 4; ++txn) {
    EXPECT_EQ(*db->RollbackHistorical("t", txn),
              *original.RollbackHistorical("t", txn));
  }
}

TEST(VacuumTest, PreservesSchemeHistory) {
  auto db = lang::EvalSentence(R"(
    define_relation(r, rollback, (a: int));
    modify_state(r, (a: int) {(1)});
    modify_schema(r, (a: int, b: int));
    modify_state(r, (a: int, b: int) {(1, 2)});
  )");
  ASSERT_TRUE(db.ok());
  auto result = VacuumRelation(*db, "r", 4);  // archives the txn-2 state
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->archived_states, 1u);
  // Current scheme and state intact; old scheme still recorded.
  EXPECT_EQ(db->Find("r")->schema().size(), 2u);
  EXPECT_EQ(db->Find("r")->schema_history().size(), 2u);
  EXPECT_EQ(db->Rollback("r")->size(), 1u);
  ASSERT_TRUE(AttachArchive(*db, "r", result->archive).ok());
  EXPECT_EQ(db->Rollback("r", 2)->schema().size(), 1u);
}

TEST(VacuumTest, CompactsTheSalvagedPrefixOfAnFsckRepairedWal) {
  // A WAL is damaged mid-log, `fsck --repair` cuts it back to the valid
  // prefix, recovery succeeds — and vacuuming the recovered database must
  // operate on EXACTLY the salvaged prefix: archive + online answers
  // together reproduce it, with no trace of the quarantined commits.
  InMemoryEnv env;
  Schema schema = *Schema::Make({{"n", ValueType::kInt}});
  auto nth_state = [&](int i) {
    std::vector<Tuple> rows;
    for (int k = 0; k <= i; ++k) rows.push_back(Tuple{Value::Int(k)});
    return *SnapshotState::Make(schema, std::move(rows));
  };
  {
    DurableExecutor exec(&env, "d", DurableOptions{});
    ASSERT_TRUE(exec.Open().ok());
    ASSERT_TRUE(exec.Submit(Command(DefineRelationCmd{
                         "log", RelationType::kRollback, schema}))
                    .ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          exec.Submit(Command(ModifySnapshotCmd{"log", nth_state(i)})).ok());
    }
  }

  // Bit rot inside record #4's payload: the salvaged prefix is records
  // 0..3 (define + three states); records #5, #6 end up quarantined.
  std::string image = *env.Read("d/wal.log");
  auto intact = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), 7u);
  image[intact->record_offsets[4] + 20] ^= 0x08;
  ASSERT_TRUE(env.Truncate("d/wal.log").ok());
  ASSERT_TRUE(env.Append("d/wal.log", image).ok());
  ASSERT_TRUE(env.Sync("d/wal.log").ok());

  SalvageOptions fsck;
  fsck.validate_record = [](std::string_view payload) {
    return DecodeWalRecord(payload).status();
  };
  fsck.validate_checkpoint = [](std::string_view data) {
    return DecodeDatabase(data).status();
  };
  auto repaired = RepairStorage(&env, "d", fsck);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ASSERT_TRUE(repaired->repaired);

  DurableExecutor recovered(&env, "d", DurableOptions{});
  ASSERT_TRUE(recovered.Open().ok());
  Database db = recovered.Snapshot();
  ASSERT_EQ(db.transaction_number(), 4u);  // define + states 0..2
  Database salvaged = db.Clone();

  // Vacuum the middle of the salvaged history, then re-attach: every
  // rollback answer of the salvaged prefix survives the round trip.
  auto result = VacuumRelation(db, "log", /*before_txn=*/4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->archived_states, 2u);  // txns 2 and 3
  // Post-vacuum, the online relation holds exactly the prefix's tail...
  EXPECT_EQ(*db.Rollback("log"), *salvaged.Rollback("log"));
  EXPECT_TRUE(db.Rollback("log", 3)->empty());
  // ...and nothing from beyond the hole leaked in: the latest state is
  // still nth_state(2), not the quarantined nth_state(5).
  EXPECT_EQ(db.Rollback("log")->size(), 3u);
  ASSERT_TRUE(AttachArchive(db, "log", result->archive).ok());
  for (TransactionNumber txn = 0; txn <= 4; ++txn) {
    EXPECT_EQ(*db.Rollback("log", txn), *salvaged.Rollback("log", txn))
        << "txn " << txn;
  }
}

class VacuumPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, VacuumPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST_P(VacuumPropertyTest, VacuumThenAttachIsIdentityForRollbackAnswers) {
  workload::Generator gen(GetParam());
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback, 20,
                                          15, 0.3);
  Database db;
  ASSERT_TRUE(ApplySentence(db, commands).ok());
  Database original = db.Clone();
  const TransactionNumber cutoff = 1 + gen.rng().Uniform(20);
  auto result = VacuumRelation(db, "r", cutoff);
  ASSERT_TRUE(result.ok());
  if (result->archived_states > 0) {
    ASSERT_TRUE(AttachArchive(db, "r", result->archive).ok());
  }
  for (TransactionNumber txn = 0; txn <= original.transaction_number();
       ++txn) {
    EXPECT_EQ(*db.Rollback("r", txn), *original.Rollback("r", txn));
  }
}

}  // namespace
}  // namespace ttra
