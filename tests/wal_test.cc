#include "storage/wal.h"

#include <gtest/gtest.h>

#include "storage/env.h"

namespace ttra {
namespace {

// --- Env backends ----------------------------------------------------------

TEST(PosixEnvTest, AppendSyncReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/ttra_env_test.bin";
  ASSERT_TRUE(env->Truncate(path).ok());
  ASSERT_TRUE(env->Append(path, "hello ").ok());
  ASSERT_TRUE(env->Append(path, "world").ok());
  ASSERT_TRUE(env->Sync(path).ok());
  auto content = env->Read(path);
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(*content, "hello world");
  EXPECT_TRUE(env->Exists(path));
  ASSERT_TRUE(env->Remove(path).ok());
  EXPECT_FALSE(env->Exists(path));
  EXPECT_EQ(env->Read(path).status().code(), ErrorCode::kIoError);
}

TEST(PosixEnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  const std::string a = ::testing::TempDir() + "/ttra_env_a.bin";
  const std::string b = ::testing::TempDir() + "/ttra_env_b.bin";
  ASSERT_TRUE(env->Truncate(a).ok());
  ASSERT_TRUE(env->Append(a, "new").ok());
  ASSERT_TRUE(env->Truncate(b).ok());
  ASSERT_TRUE(env->Append(b, "old").ok());
  ASSERT_TRUE(env->Rename(a, b).ok());
  EXPECT_FALSE(env->Exists(a));
  EXPECT_EQ(*env->Read(b), "new");
  ASSERT_TRUE(env->Remove(b).ok());
}

TEST(PosixEnvTest, ListAndCreateDir) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/ttra_env_list_dir";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir).ok());  // idempotent
  ASSERT_TRUE(env->Append(dir + "/b.txt", "x").ok());
  ASSERT_TRUE(env->Append(dir + "/a.txt", "y").ok());
  auto names = env->List(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a.txt", "b.txt"}));
  ASSERT_TRUE(env->Remove(dir + "/a.txt").ok());
  ASSERT_TRUE(env->Remove(dir + "/b.txt").ok());
}

TEST(InMemoryEnvTest, DropUnsyncedLosesExactlyTheUnsyncedSuffix) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("f", "durable").ok());
  ASSERT_TRUE(env.Sync("f").ok());
  ASSERT_TRUE(env.Append("f", " volatile").ok());
  env.DropUnsynced();
  EXPECT_EQ(*env.Read("f"), "durable");
  // A second crash loses nothing more.
  env.DropUnsynced();
  EXPECT_EQ(*env.Read("f"), "durable");
}

TEST(InMemoryEnvTest, RenameIsDurable) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("tmp", "payload").ok());
  ASSERT_TRUE(env.Sync("tmp").ok());
  ASSERT_TRUE(env.Rename("tmp", "final").ok());
  env.DropUnsynced();
  EXPECT_FALSE(env.Exists("tmp"));
  EXPECT_EQ(*env.Read("final"), "payload");
}

TEST(FaultInjectionEnvTest, FailsTheNthOperation) {
  FaultInjectionEnv env;
  env.InjectFault(2, FaultInjectionEnv::FaultMode::kFailOp);
  EXPECT_TRUE(env.Append("f", "a").ok());
  Status failed = env.Append("f", "b");
  EXPECT_EQ(failed.code(), ErrorCode::kIoError);
  EXPECT_TRUE(env.fault_triggered());
  // One-shot: subsequent ops succeed again.
  EXPECT_TRUE(env.Append("f", "c").ok());
  EXPECT_EQ(*env.Read("f"), "ac");
}

TEST(FaultInjectionEnvTest, TornAppendWritesAPrefix) {
  FaultInjectionEnv env;
  env.InjectFault(1, FaultInjectionEnv::FaultMode::kTornAppend);
  EXPECT_EQ(env.Append("f", "0123456789").code(), ErrorCode::kIoError);
  EXPECT_EQ(*env.Read("f"), "01234");  // half the write landed
  env.Crash();
  EXPECT_EQ(*env.Read("f"), "");  // and none of it was synced
}

TEST(FaultInjectionEnvTest, CountsAllMutatingOps) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.Truncate("f").ok());
  ASSERT_TRUE(env.Append("f", "x").ok());
  ASSERT_TRUE(env.TruncateTo("f", 0).ok());
  ASSERT_TRUE(env.Sync("f").ok());
  ASSERT_TRUE(env.Rename("f", "g").ok());
  ASSERT_TRUE(env.Remove("g").ok());
  EXPECT_EQ(env.op_count(), 6u);
}

TEST(InMemoryEnvTest, TruncateToCutsTheFileAndCapsSyncedSize) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("f", "0123456789").ok());
  ASSERT_TRUE(env.Sync("f").ok());
  ASSERT_TRUE(env.TruncateTo("f", 4).ok());
  EXPECT_EQ(*env.Read("f"), "0123");
  // The cut bytes are gone for good: synced_size must have been capped,
  // or a crash would "restore" them.
  env.DropUnsynced();
  EXPECT_EQ(*env.Read("f"), "0123");
  // Growing a file via TruncateTo is not a thing.
  EXPECT_EQ(env.TruncateTo("f", 100).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(env.TruncateTo("missing", 0).code(), ErrorCode::kIoError);
}

TEST(PosixEnvTest, TruncateToCutsTheFile) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/ttra_truncate_to.bin";
  ASSERT_TRUE(env->Truncate(path).ok());
  ASSERT_TRUE(env->Append(path, "0123456789").ok());
  ASSERT_TRUE(env->Sync(path).ok());
  ASSERT_TRUE(env->TruncateTo(path, 7).ok());
  EXPECT_EQ(*env->Read(path), "0123456");
  ASSERT_TRUE(env->Append(path, "X").ok());  // append lands at the new end
  EXPECT_EQ(*env->Read(path), "0123456X");
  EXPECT_EQ(env->TruncateTo(path, 100).code(), ErrorCode::kInvalidArgument);
  ASSERT_TRUE(env->Remove(path).ok());
}

// --- Fault plans -----------------------------------------------------------

TEST(FaultPlanTest, SameSeedReplaysTheSameFailureHistory) {
  FaultPlanOptions plan;
  plan.transient_error_rate = 0.3;
  plan.torn_append_rate = 0.2;
  plan.max_transient_burst = 3;

  auto run = [&](FaultInjectionEnv& env) {
    env.ArmPlan(42, plan);
    std::vector<ErrorCode> history;
    for (int i = 0; i < 100; ++i) {
      history.push_back(env.Append("f", "payload-" + std::to_string(i)).code());
    }
    return history;
  };
  FaultInjectionEnv a, b;
  EXPECT_EQ(run(a), run(b));
  EXPECT_EQ(*a.Read("f"), *b.Read("f"));
  const auto stats = a.plan_stats();
  EXPECT_GT(stats.transient_failures + stats.torn_appends, 0u)
      << "schedule fired no faults; rates too low for the sweep to mean much";
}

TEST(FaultPlanTest, TransientBurstsFailThenHeal) {
  FaultInjectionEnv env;
  FaultPlanOptions plan;
  plan.transient_error_rate = 0.4;
  plan.max_transient_burst = 3;
  env.ArmPlan(7, plan);

  // A transient failure writes nothing, so the surviving file must be the
  // concatenation of exactly the successful appends.
  std::string expect;
  size_t failures = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string payload = "p" + std::to_string(i) + ";";
    Status status = env.Append("f", payload);
    if (status.ok()) {
      expect += payload;
    } else {
      EXPECT_EQ(status.code(), ErrorCode::kIoError);
      ++failures;
    }
  }
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, 200u) << "bursts never healed";
  EXPECT_EQ(*env.Read("f"), expect);
  EXPECT_EQ(env.plan_stats().transient_failures, failures);

  // Disarming heals completely.
  env.DisarmPlan();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(env.Append("f", "x").ok());
  }
}

TEST(FaultPlanTest, EnospcIsPersistentUntilSpaceIsFreed) {
  FaultInjectionEnv env;
  FaultPlanOptions plan;
  plan.capacity_bytes = 10;
  env.ArmPlan(1, plan);
  ASSERT_TRUE(env.Append("f", "01234567").ok());  // 8 of 10 bytes
  Status full = env.Append("f", "89abc");          // would be 13
  EXPECT_EQ(full.code(), ErrorCode::kResourceExhausted);
  // Persistent, not transient: retrying does not help.
  EXPECT_EQ(env.Append("f", "89abc").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(env.plan_stats().enospc_failures, 2u);
  // Freeing space heals it — ENOSPC is about the store, not the op.
  ASSERT_TRUE(env.Remove("f").ok());
  EXPECT_TRUE(env.Append("g", "89abc").ok());
}

TEST(FaultPlanTest, LyingSyncLosesAcknowledgedBytesAtCrash) {
  FaultInjectionEnv env;
  FaultPlanOptions plan;
  plan.lying_sync_rate = 1.0;
  env.ArmPlan(3, plan);
  ASSERT_TRUE(env.Append("f", "doomed").ok());
  ASSERT_TRUE(env.Sync("f").ok());  // the lie: OK without durability
  EXPECT_GE(env.plan_stats().lying_syncs, 1u);
  env.Crash();
  EXPECT_EQ(*env.Read("f"), "");
}

TEST(FaultPlanTest, ReadBitFlipIsStickyAndLogged) {
  FaultInjectionEnv env;
  const std::string original = "a long enough payload to flip a bit in";
  ASSERT_TRUE(env.Append("f", original).ok());
  ASSERT_TRUE(env.Sync("f").ok());
  FaultPlanOptions plan;
  plan.read_bit_flip_rate = 1.0;
  env.ArmPlan(9, plan);
  const std::string damaged = *env.Read("f");
  EXPECT_EQ(damaged.size(), original.size());
  EXPECT_NE(damaged, original);
  ASSERT_EQ(env.damage_log().size(), 1u);
  const auto event = env.damage_log()[0];
  EXPECT_EQ(event.path, "f");
  EXPECT_EQ(event.bytes, 1u);
  EXPECT_NE(damaged[event.offset], original[event.offset]);
  // Sticky: the rot stays after the plan is disarmed — it is on the
  // platter, not in the read path.
  env.DisarmPlan();
  EXPECT_EQ(*env.Read("f"), damaged);
  EXPECT_EQ(env.plan_stats().bit_flips, 1u);
}

TEST(FaultPlanTest, ReadTruncationCutsAStickySuffix) {
  FaultInjectionEnv env;
  const std::string original(100, 'z');
  ASSERT_TRUE(env.Append("f", original).ok());
  ASSERT_TRUE(env.Sync("f").ok());
  FaultPlanOptions plan;
  plan.read_truncate_rate = 1.0;
  env.ArmPlan(11, plan);
  const std::string damaged = *env.Read("f");
  EXPECT_LT(damaged.size(), original.size());
  EXPECT_EQ(damaged, original.substr(0, damaged.size()));
  ASSERT_GE(env.damage_log().size(), 1u);
  const auto event = env.damage_log()[0];
  EXPECT_EQ(event.offset, damaged.size());
  EXPECT_EQ(event.offset + event.bytes, original.size());
  env.DisarmPlan();
  EXPECT_EQ(*env.Read("f"), damaged);
}

// --- WAL -------------------------------------------------------------------

TEST(WalTest, RoundTripsRecordsInOrder) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("first").ok());
  ASSERT_TRUE(writer.AddRecord("").ok());  // empty payloads are legal
  ASSERT_TRUE(writer.AddRecord("third record, longer").ok());
  ASSERT_TRUE(writer.Sync().ok());
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->records,
            (std::vector<std::string>{"first", "", "third record, longer"}));
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, AddRecordsMatchesIndividualAddsInOneAppend) {
  // Batch append: same framed bytes as N AddRecord calls, one Env::Append.
  const std::vector<std::string> payloads = {"alpha", "", "gamma-longer"};

  InMemoryEnv one_by_one_env;
  WalWriter one_by_one(&one_by_one_env, "wal");
  ASSERT_TRUE(one_by_one.Create().ok());
  for (const std::string& p : payloads) {
    ASSERT_TRUE(one_by_one.AddRecord(p).ok());
  }

  InMemoryEnv batched_env;
  WalWriter batched(&batched_env, "wal");
  ASSERT_TRUE(batched.Create().ok());
  ASSERT_TRUE(batched.AddRecords(payloads).ok());

  EXPECT_EQ(*one_by_one_env.Read("wal"), *batched_env.Read("wal"));
  auto read = ReadWal(batched_env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, payloads);

  // The stats ledger shows the I/O saving: same records and bytes, one
  // append instead of three.
  EXPECT_EQ(one_by_one.stats().records, 3u);
  EXPECT_EQ(one_by_one.stats().appends, 3u);
  EXPECT_EQ(batched.stats().records, 3u);
  EXPECT_EQ(batched.stats().appends, 1u);
  EXPECT_EQ(batched.stats().bytes_appended,
            one_by_one.stats().bytes_appended);
  EXPECT_EQ(batched.stats().syncs, 0u);
  ASSERT_TRUE(batched.Sync().ok());
  EXPECT_EQ(batched.stats().syncs, 1u);
}

TEST(WalTest, AddRecordsEmptyBatchIsANoOp) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  const std::string before = *env.Read("wal");
  ASSERT_TRUE(writer.AddRecords({}).ok());
  EXPECT_EQ(*env.Read("wal"), before);
  EXPECT_EQ(writer.stats().appends, 0u);
}

TEST(WalTest, CreateDiscardsExistingRecords) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("old").ok());
  ASSERT_TRUE(writer.Create().ok());
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("intact-1").ok());
  ASSERT_TRUE(writer.AddRecord("intact-2").ok());
  const size_t intact_size = env.Read("wal")->size();
  ASSERT_TRUE(writer.AddRecord("the record a crash tears").ok());
  const std::string full = *env.Read("wal");

  // Simulate every possible torn tail: the file ends mid-record (cuts
  // strictly inside the third record; at intact_size the file is whole).
  for (size_t cut = intact_size + 1; cut < full.size(); ++cut) {
    InMemoryEnv torn;
    ASSERT_TRUE(torn.Append("wal", full.substr(0, cut)).ok());
    auto read = ReadWal(torn, "wal");
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status();
    EXPECT_EQ(read->records,
              (std::vector<std::string>{"intact-1", "intact-2"}))
        << "cut at " << cut;
    EXPECT_TRUE(read->torn_tail) << "cut at " << cut;
    EXPECT_EQ(read->valid_size, intact_size) << "cut at " << cut;
  }
}

TEST(WalTest, CorruptRecordTruncatesTail) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("good").ok());
  const size_t good_size = env.Read("wal")->size();
  ASSERT_TRUE(writer.AddRecord("bad").ok());
  std::string data = *env.Read("wal");
  data.back() ^= 0x01;  // flip a payload bit in the last record
  InMemoryEnv damaged;
  ASSERT_TRUE(damaged.Append("wal", data).ok());
  auto read = ReadWal(damaged, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"good"});
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->valid_size, good_size);
}

TEST(WalTest, ForeignFileIsCorruptionNotTornTail) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("wal", "this is not a wal, definitely").ok());
  EXPECT_EQ(ReadWal(env, "wal").status().code(), ErrorCode::kCorruption);
}

TEST(WalTest, ShortHeaderReadsAsEmptyTornLog) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("wal", "abc").ok());  // header never made it
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_TRUE(read->torn_tail);
}

TEST(WalTest, MissingFileIsAnIoError) {
  InMemoryEnv env;
  EXPECT_EQ(ReadWal(env, "nope").status().code(), ErrorCode::kIoError);
}

TEST(WalTest, AppendAfterReopenContinuesTheLog) {
  InMemoryEnv env;
  {
    WalWriter writer(&env, "wal");
    ASSERT_TRUE(writer.Create().ok());
    ASSERT_TRUE(writer.AddRecord("before").ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  {
    WalWriter writer(&env, "wal");
    ASSERT_TRUE(writer.OpenForAppend().ok());
    ASSERT_TRUE(writer.AddRecord("after").ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, (std::vector<std::string>{"before", "after"}));
}

// --- Adversarial inputs ----------------------------------------------------
//
// These tests hand-assemble damaged WAL images byte by byte. The framing
// bytes are obtained from a real writer (never hand-encoded) so the tests
// stay valid if the format constants move.

constexpr size_t kWalHeaderSize = 9;    // u64 magic + u8 version
constexpr size_t kFrameHeaderSize = 16; // u64 length + u64 checksum

/// The full on-disk image of a WAL holding `payloads`.
std::string WalImage(const std::vector<std::string>& payloads) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  EXPECT_TRUE(writer.Create().ok());
  for (const std::string& p : payloads) {
    EXPECT_TRUE(writer.AddRecord(p).ok());
  }
  return *env.Read("wal");
}

/// Just the framed bytes of one record (no file header).
std::string Frame(const std::string& payload) {
  return WalImage({payload}).substr(kWalHeaderSize);
}

Result<WalReadResult> ReadImage(const std::string& image) {
  InMemoryEnv env;
  EXPECT_TRUE(env.Append("wal", image).ok());
  return ReadWal(env, "wal");
}

TEST(WalAdversarialTest, TruncatedFileHeaderReportsItsCause) {
  for (size_t len = 1; len < kWalHeaderSize; ++len) {
    auto read = ReadImage(WalImage({}).substr(0, len));
    ASSERT_TRUE(read.ok()) << "header cut at " << len;
    EXPECT_TRUE(read->records.empty());
    EXPECT_TRUE(read->torn_tail);
    EXPECT_EQ(read->cause, WalCorruptionCause::kTornFileHeader);
    EXPECT_EQ(read->records_after_hole, 0u);
  }
}

TEST(WalAdversarialTest, TornTailReportsOffsetIndexAndCause) {
  const std::string image = WalImage({"first", "second", "the-torn-one"});
  const size_t intact = WalImage({"first", "second"}).size();
  for (size_t cut = intact + 1; cut < image.size(); ++cut) {
    auto read = ReadImage(image.substr(0, cut));
    ASSERT_TRUE(read.ok()) << "cut at " << cut;
    EXPECT_TRUE(read->torn_tail);
    EXPECT_EQ(read->invalid_offset, intact) << "cut at " << cut;
    EXPECT_EQ(read->invalid_record_index, 2u);
    // A pure torn tail: nothing intact beyond the damage.
    EXPECT_EQ(read->records_after_hole, 0u) << "cut at " << cut;
    const WalCorruptionCause cause = read->cause;
    EXPECT_TRUE(cause == WalCorruptionCause::kTornRecordHeader ||
                cause == WalCorruptionCause::kTornPayload ||
                cause == WalCorruptionCause::kChecksumMismatch)
        << "cut at " << cut << ": "
        << std::string(WalCorruptionCauseName(cause));
  }
}

TEST(WalAdversarialTest, BitFlippedLengthPrefixIsMidLogCorruption) {
  std::string image = WalImage({"record-zero", "record-one", "record-two"});
  const size_t rec1 = WalImage({"record-zero"}).size();  // offset of #1
  const size_t rec2 = WalImage({"record-zero", "record-one"}).size();
  // Flip a high bit of record #1's length prefix: the length now points
  // far past the end of the file, but record #2 behind it is untouched.
  image[rec1 + 6] ^= 0x10;
  auto read = ReadImage(image);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"record-zero"});
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->cause, WalCorruptionCause::kTornPayload);
  EXPECT_EQ(read->invalid_offset, rec1);
  EXPECT_EQ(read->invalid_record_index, 1u);
  // The resync scan proves this is NOT a torn tail: an intact record lies
  // beyond the hole, so truncating here would drop an acked commit.
  EXPECT_EQ(read->records_after_hole, 1u);
  EXPECT_EQ(read->resync_offset, rec2);
}

TEST(WalAdversarialTest, ValidGarbageValidDoesNotResurrectPostHoleRecords) {
  // header | good-1 | 24 bytes of garbage | good-2 | good-3 — the image a
  // misdirected write (or bit rot across a whole frame) leaves behind.
  std::string image = WalImage({"good-1"});
  const size_t hole = image.size();
  image += std::string(24, 'X');
  const size_t resync = image.size();
  image += Frame("good-2");
  image += Frame("good-3");

  auto read = ReadImage(image);
  ASSERT_TRUE(read.ok());
  // The reader must NOT resurrect good-2/good-3: replaying records from
  // beyond a hole of unknown size could apply commits out of order. It
  // reports them instead, and the fsck --repair decision is explicit.
  EXPECT_EQ(read->records, std::vector<std::string>{"good-1"});
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->invalid_offset, hole);
  EXPECT_EQ(read->invalid_record_index, 1u);
  EXPECT_EQ(read->records_after_hole, 2u);
  EXPECT_EQ(read->resync_offset, resync);
  EXPECT_EQ(read->valid_size, hole);
}

TEST(WalAdversarialTest, CleanLogHasNoCorruptionDetail) {
  auto read = ReadImage(WalImage({"a", "b"}));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->cause, WalCorruptionCause::kNone);
  EXPECT_EQ(read->records_after_hole, 0u);
  EXPECT_EQ(read->resync_offset, 0u);
  ASSERT_EQ(read->record_offsets.size(), 2u);
  EXPECT_EQ(read->record_offsets[0], kWalHeaderSize);
  EXPECT_EQ(read->record_offsets[1],
            kWalHeaderSize + kFrameHeaderSize + 1);
}

// --- ResetTail -------------------------------------------------------------

TEST(WalTest, GoodSizeTracksEveryAppend) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  EXPECT_EQ(writer.good_size(), env.Read("wal")->size());
  ASSERT_TRUE(writer.AddRecord("one").ok());
  EXPECT_EQ(writer.good_size(), env.Read("wal")->size());
  ASSERT_TRUE(writer.AddRecords({"two", "three"}).ok());
  EXPECT_EQ(writer.good_size(), env.Read("wal")->size());
  // OpenForAppend picks the boundary up from the file.
  WalWriter reopened(&env, "wal");
  ASSERT_TRUE(reopened.OpenForAppend().ok());
  EXPECT_EQ(reopened.good_size(), writer.good_size());
}

TEST(WalTest, ResetTailMakesATornAppendRetryable) {
  FaultInjectionEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("intact").ok());

  env.InjectFault(1, FaultInjectionEnv::FaultMode::kTornAppend);
  ASSERT_EQ(writer.AddRecord("torn-then-retried").code(),
            ErrorCode::kIoError);
  // The torn frame is on disk; a blind retry would strand the re-appended
  // record behind it, invisible to the reader.
  ASSERT_GT(env.Read("wal")->size(), writer.good_size());
  ASSERT_TRUE(writer.ResetTail().ok());
  EXPECT_EQ(env.Read("wal")->size(), writer.good_size());
  ASSERT_TRUE(writer.AddRecord("torn-then-retried").ok());
  ASSERT_TRUE(writer.Sync().ok());

  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records,
            (std::vector<std::string>{"intact", "torn-then-retried"}));
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, WorksOnThePosixBackend) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/ttra_wal_test.log";
  WalWriter writer(env, path);
  ASSERT_TRUE(writer.Create().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.AddRecord("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  auto read = ReadWal(*env, path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 100u);
  EXPECT_EQ(read->records[99], "record-99");
  EXPECT_FALSE(read->torn_tail);
  ASSERT_TRUE(env->Remove(path).ok());
}

}  // namespace
}  // namespace ttra
