#include "storage/wal.h"

#include <gtest/gtest.h>

#include "storage/env.h"

namespace ttra {
namespace {

// --- Env backends ----------------------------------------------------------

TEST(PosixEnvTest, AppendSyncReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/ttra_env_test.bin";
  ASSERT_TRUE(env->Truncate(path).ok());
  ASSERT_TRUE(env->Append(path, "hello ").ok());
  ASSERT_TRUE(env->Append(path, "world").ok());
  ASSERT_TRUE(env->Sync(path).ok());
  auto content = env->Read(path);
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(*content, "hello world");
  EXPECT_TRUE(env->Exists(path));
  ASSERT_TRUE(env->Remove(path).ok());
  EXPECT_FALSE(env->Exists(path));
  EXPECT_EQ(env->Read(path).status().code(), ErrorCode::kIoError);
}

TEST(PosixEnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  const std::string a = ::testing::TempDir() + "/ttra_env_a.bin";
  const std::string b = ::testing::TempDir() + "/ttra_env_b.bin";
  ASSERT_TRUE(env->Truncate(a).ok());
  ASSERT_TRUE(env->Append(a, "new").ok());
  ASSERT_TRUE(env->Truncate(b).ok());
  ASSERT_TRUE(env->Append(b, "old").ok());
  ASSERT_TRUE(env->Rename(a, b).ok());
  EXPECT_FALSE(env->Exists(a));
  EXPECT_EQ(*env->Read(b), "new");
  ASSERT_TRUE(env->Remove(b).ok());
}

TEST(PosixEnvTest, ListAndCreateDir) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/ttra_env_list_dir";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir).ok());  // idempotent
  ASSERT_TRUE(env->Append(dir + "/b.txt", "x").ok());
  ASSERT_TRUE(env->Append(dir + "/a.txt", "y").ok());
  auto names = env->List(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a.txt", "b.txt"}));
  ASSERT_TRUE(env->Remove(dir + "/a.txt").ok());
  ASSERT_TRUE(env->Remove(dir + "/b.txt").ok());
}

TEST(InMemoryEnvTest, DropUnsyncedLosesExactlyTheUnsyncedSuffix) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("f", "durable").ok());
  ASSERT_TRUE(env.Sync("f").ok());
  ASSERT_TRUE(env.Append("f", " volatile").ok());
  env.DropUnsynced();
  EXPECT_EQ(*env.Read("f"), "durable");
  // A second crash loses nothing more.
  env.DropUnsynced();
  EXPECT_EQ(*env.Read("f"), "durable");
}

TEST(InMemoryEnvTest, RenameIsDurable) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("tmp", "payload").ok());
  ASSERT_TRUE(env.Sync("tmp").ok());
  ASSERT_TRUE(env.Rename("tmp", "final").ok());
  env.DropUnsynced();
  EXPECT_FALSE(env.Exists("tmp"));
  EXPECT_EQ(*env.Read("final"), "payload");
}

TEST(FaultInjectionEnvTest, FailsTheNthOperation) {
  FaultInjectionEnv env;
  env.InjectFault(2, FaultInjectionEnv::FaultMode::kFailOp);
  EXPECT_TRUE(env.Append("f", "a").ok());
  Status failed = env.Append("f", "b");
  EXPECT_EQ(failed.code(), ErrorCode::kIoError);
  EXPECT_TRUE(env.fault_triggered());
  // One-shot: subsequent ops succeed again.
  EXPECT_TRUE(env.Append("f", "c").ok());
  EXPECT_EQ(*env.Read("f"), "ac");
}

TEST(FaultInjectionEnvTest, TornAppendWritesAPrefix) {
  FaultInjectionEnv env;
  env.InjectFault(1, FaultInjectionEnv::FaultMode::kTornAppend);
  EXPECT_EQ(env.Append("f", "0123456789").code(), ErrorCode::kIoError);
  EXPECT_EQ(*env.Read("f"), "01234");  // half the write landed
  env.Crash();
  EXPECT_EQ(*env.Read("f"), "");  // and none of it was synced
}

TEST(FaultInjectionEnvTest, CountsAllMutatingOps) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.Truncate("f").ok());
  ASSERT_TRUE(env.Append("f", "x").ok());
  ASSERT_TRUE(env.Sync("f").ok());
  ASSERT_TRUE(env.Rename("f", "g").ok());
  ASSERT_TRUE(env.Remove("g").ok());
  EXPECT_EQ(env.op_count(), 5u);
}

// --- WAL -------------------------------------------------------------------

TEST(WalTest, RoundTripsRecordsInOrder) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("first").ok());
  ASSERT_TRUE(writer.AddRecord("").ok());  // empty payloads are legal
  ASSERT_TRUE(writer.AddRecord("third record, longer").ok());
  ASSERT_TRUE(writer.Sync().ok());
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->records,
            (std::vector<std::string>{"first", "", "third record, longer"}));
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, AddRecordsMatchesIndividualAddsInOneAppend) {
  // Batch append: same framed bytes as N AddRecord calls, one Env::Append.
  const std::vector<std::string> payloads = {"alpha", "", "gamma-longer"};

  InMemoryEnv one_by_one_env;
  WalWriter one_by_one(&one_by_one_env, "wal");
  ASSERT_TRUE(one_by_one.Create().ok());
  for (const std::string& p : payloads) {
    ASSERT_TRUE(one_by_one.AddRecord(p).ok());
  }

  InMemoryEnv batched_env;
  WalWriter batched(&batched_env, "wal");
  ASSERT_TRUE(batched.Create().ok());
  ASSERT_TRUE(batched.AddRecords(payloads).ok());

  EXPECT_EQ(*one_by_one_env.Read("wal"), *batched_env.Read("wal"));
  auto read = ReadWal(batched_env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, payloads);

  // The stats ledger shows the I/O saving: same records and bytes, one
  // append instead of three.
  EXPECT_EQ(one_by_one.stats().records, 3u);
  EXPECT_EQ(one_by_one.stats().appends, 3u);
  EXPECT_EQ(batched.stats().records, 3u);
  EXPECT_EQ(batched.stats().appends, 1u);
  EXPECT_EQ(batched.stats().bytes_appended,
            one_by_one.stats().bytes_appended);
  EXPECT_EQ(batched.stats().syncs, 0u);
  ASSERT_TRUE(batched.Sync().ok());
  EXPECT_EQ(batched.stats().syncs, 1u);
}

TEST(WalTest, AddRecordsEmptyBatchIsANoOp) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  const std::string before = *env.Read("wal");
  ASSERT_TRUE(writer.AddRecords({}).ok());
  EXPECT_EQ(*env.Read("wal"), before);
  EXPECT_EQ(writer.stats().appends, 0u);
}

TEST(WalTest, CreateDiscardsExistingRecords) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("old").ok());
  ASSERT_TRUE(writer.Create().ok());
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("intact-1").ok());
  ASSERT_TRUE(writer.AddRecord("intact-2").ok());
  const size_t intact_size = env.Read("wal")->size();
  ASSERT_TRUE(writer.AddRecord("the record a crash tears").ok());
  const std::string full = *env.Read("wal");

  // Simulate every possible torn tail: the file ends mid-record (cuts
  // strictly inside the third record; at intact_size the file is whole).
  for (size_t cut = intact_size + 1; cut < full.size(); ++cut) {
    InMemoryEnv torn;
    ASSERT_TRUE(torn.Append("wal", full.substr(0, cut)).ok());
    auto read = ReadWal(torn, "wal");
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status();
    EXPECT_EQ(read->records,
              (std::vector<std::string>{"intact-1", "intact-2"}))
        << "cut at " << cut;
    EXPECT_TRUE(read->torn_tail) << "cut at " << cut;
    EXPECT_EQ(read->valid_size, intact_size) << "cut at " << cut;
  }
}

TEST(WalTest, CorruptRecordTruncatesTail) {
  InMemoryEnv env;
  WalWriter writer(&env, "wal");
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AddRecord("good").ok());
  const size_t good_size = env.Read("wal")->size();
  ASSERT_TRUE(writer.AddRecord("bad").ok());
  std::string data = *env.Read("wal");
  data.back() ^= 0x01;  // flip a payload bit in the last record
  InMemoryEnv damaged;
  ASSERT_TRUE(damaged.Append("wal", data).ok());
  auto read = ReadWal(damaged, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"good"});
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->valid_size, good_size);
}

TEST(WalTest, ForeignFileIsCorruptionNotTornTail) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("wal", "this is not a wal, definitely").ok());
  EXPECT_EQ(ReadWal(env, "wal").status().code(), ErrorCode::kCorruption);
}

TEST(WalTest, ShortHeaderReadsAsEmptyTornLog) {
  InMemoryEnv env;
  ASSERT_TRUE(env.Append("wal", "abc").ok());  // header never made it
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_TRUE(read->torn_tail);
}

TEST(WalTest, MissingFileIsAnIoError) {
  InMemoryEnv env;
  EXPECT_EQ(ReadWal(env, "nope").status().code(), ErrorCode::kIoError);
}

TEST(WalTest, AppendAfterReopenContinuesTheLog) {
  InMemoryEnv env;
  {
    WalWriter writer(&env, "wal");
    ASSERT_TRUE(writer.Create().ok());
    ASSERT_TRUE(writer.AddRecord("before").ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  {
    WalWriter writer(&env, "wal");
    ASSERT_TRUE(writer.OpenForAppend().ok());
    ASSERT_TRUE(writer.AddRecord("after").ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  auto read = ReadWal(env, "wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, (std::vector<std::string>{"before", "after"}));
}

TEST(WalTest, WorksOnThePosixBackend) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/ttra_wal_test.log";
  WalWriter writer(env, path);
  ASSERT_TRUE(writer.Create().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.AddRecord("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  auto read = ReadWal(*env, path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 100u);
  EXPECT_EQ(read->records[99], "record-99");
  EXPECT_FALSE(read->torn_tail);
  ASSERT_TRUE(env->Remove(path).ok());
}

}  // namespace
}  // namespace ttra
