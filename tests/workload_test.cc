#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "workload/generator.h"

namespace ttra::workload {
namespace {

TEST(GeneratorTest, DeterministicFromSeed) {
  Generator a(5), b(5);
  const Schema sa = a.RandomSchema();
  const Schema sb = b.RandomSchema();
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.RandomState(sa, 20), b.RandomState(sb, 20));
  EXPECT_EQ(a.RandomElement(), b.RandomElement());
}

TEST(GeneratorTest, SchemaRespectsArityBounds) {
  GeneratorOptions options;
  options.min_attributes = 2;
  options.max_attributes = 5;
  Generator gen(7, options);
  for (int i = 0; i < 50; ++i) {
    const Schema s = gen.RandomSchema();
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 5u);
  }
  EXPECT_EQ(gen.RandomSchema(3).size(), 3u);
}

TEST(GeneratorTest, ValuesMatchRequestedType) {
  Generator gen(9);
  for (ValueType t : {ValueType::kInt, ValueType::kDouble, ValueType::kString,
                      ValueType::kBool, ValueType::kUserTime}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(gen.RandomValue(t).type(), t);
    }
  }
}

TEST(GeneratorTest, StatesConformAndBound) {
  Generator gen(11);
  const Schema schema = gen.RandomSchema();
  SnapshotState state = gen.RandomState(schema, 50);
  EXPECT_LE(state.size(), 50u);  // duplicates may collapse
  for (const Tuple& t : state.tuples()) {
    EXPECT_TRUE(t.ConformsTo(schema).ok());
  }
}

TEST(GeneratorTest, HistoricalStatesAreCanonical) {
  Generator gen(13);
  const Schema schema = gen.RandomSchema();
  HistoricalState state = gen.RandomHistoricalState(schema, 40);
  for (const HistoricalTuple& ht : state.tuples()) {
    EXPECT_FALSE(ht.valid.empty());
  }
}

TEST(GeneratorTest, PredicatesValidate) {
  Generator gen(17);
  for (int i = 0; i < 50; ++i) {
    const Schema schema = gen.RandomSchema();
    Predicate p = gen.RandomPredicate(schema, 3);
    EXPECT_TRUE(p.Validate(schema).ok()) << p.ToString();
  }
}

TEST(GeneratorTest, MutateChangesRoughlyTheRequestedFraction) {
  Generator gen(19);
  const Schema schema = gen.RandomSchema(2);
  SnapshotState state = gen.RandomState(schema, 400);
  SnapshotState mutated = gen.MutateState(state, 0.1);
  EXPECT_EQ(mutated.schema(), state.schema());
  // The two states should overlap heavily but not be identical.
  size_t shared = 0;
  for (const Tuple& t : mutated.tuples()) {
    if (state.Contains(t)) ++shared;
  }
  EXPECT_GT(shared, state.size() / 2);
  EXPECT_NE(mutated, state);
}

TEST(GeneratorTest, MutateZeroFractionMostlyIdentity) {
  Generator gen(23);
  const Schema schema = gen.RandomSchema(2);
  SnapshotState state = gen.RandomState(schema, 50);
  // change_fraction 0 still allows the +1 insertion coin-flip, so check
  // every original tuple survives.
  SnapshotState mutated = gen.MutateState(state, 0.0);
  for (const Tuple& t : state.tuples()) {
    EXPECT_TRUE(mutated.Contains(t));
  }
}

TEST(GeneratorTest, CommandStreamsExecuteCleanly) {
  for (RelationType type : {RelationType::kSnapshot, RelationType::kRollback,
                            RelationType::kHistorical,
                            RelationType::kTemporal}) {
    Generator gen(29 + static_cast<uint64_t>(type));
    auto commands = gen.RandomCommandStream("x", type, 15, 10, 0.3);
    ASSERT_EQ(commands.size(), 16u);
    Database db;
    EXPECT_TRUE(ApplySentence(db, commands).ok());
    EXPECT_EQ(db.transaction_number(), 16u);
  }
}

TEST(GeneratorTest, RandomExprsTypeCheckAndEvaluate) {
  Generator gen(31);
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, schema).ok());
  ASSERT_TRUE(db.ModifyState("r", gen.RandomState(schema, 15)).ok());
  std::vector<lang::Expr> bases = {
      lang::Expr::Rollback("r", std::nullopt, false),
      lang::Expr::Const(gen.RandomState(schema, 10)),
  };
  for (int i = 0; i < 30; ++i) {
    lang::Expr expr = gen.RandomExpr(bases, schema, 4);
    auto value = lang::EvalExpr(expr, db);
    ASSERT_TRUE(value.ok()) << expr.ToString() << " → " << value.status();
    EXPECT_EQ(std::get<SnapshotState>(*value).schema(), schema);
  }
}

}  // namespace
}  // namespace ttra::workload
