#!/bin/sh
# Local gate: build + test in several configurations. Passes can be run
# independently or all together.
#
#   tools/check.sh            # all passes: normal, ASan/UBSan, TSan, tidy,
#                             # stress, bench
#   tools/check.sh --fast     # tier-1 gate only: ctest -L tier1, no
#                             # sanitizers, no bench
#   tools/check.sh --asan     # ASan/UBSan pass only (memory gate)
#   tools/check.sh --tsan     # ThreadSanitizer pass only (race gate)
#   tools/check.sh --stress   # stress-labeled suites (concurrency oracle,
#                             # crash sweeps) with extra randomized seeds
#   tools/check.sh --faults   # fault-schedule torture oracle (label
#                             # `faults`) with a deep seed sweep
#   tools/check.sh --tidy     # clang-tidy + thread-safety analysis
#                             # (skips whichever clang tool is missing)
#
# Run from the repository root. Build trees go to build/ (normal),
# build-san/ (ASan/UBSan), build-tsan/ (TSan), and build-release/ (bench
# smoke) so the configurations never collide.
set -eu

jobs=$(nproc 2>/dev/null || echo 4)

do_normal=0
do_asan=0
do_tsan=0
do_tidy=0
do_stress=0
do_faults=0
do_bench=0
case "${1:-}" in
  "")      do_normal=1 do_asan=1 do_tsan=1 do_tidy=1 do_stress=1 do_faults=1 do_bench=1 ;;
  --fast)  do_normal=1 ;;
  --asan)  do_asan=1 ;;
  --tsan)  do_tsan=1 ;;
  --tidy)  do_tidy=1 ;;
  --stress) do_stress=1 ;;
  --faults) do_faults=1 ;;
  *) echo "usage: tools/check.sh [--fast|--asan|--tsan|--stress|--faults|--tidy]" >&2; exit 2 ;;
esac

# run_pass <build-dir> <ctest-label|-> [cmake args...]; "-" runs every
# test, a label runs only the suites carrying it (see tests/CMakeLists.txt:
# tier1 = the fast gate, stress = randomized concurrency/crash suites).
run_pass() {
  dir=$1
  label=$2
  shift 2
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$jobs"
  echo "== test $dir${label:+ (-L $label)}"
  if [ "$label" = "-" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L "$label"
  fi
}

if [ "$do_normal" -eq 1 ]; then
  run_pass build tier1
fi

if [ "$do_asan" -eq 1 ]; then
  # Leak detection needs ptrace; fall back gracefully inside containers.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
  run_pass build-san - "-DTTRA_SANITIZE=address;undefined"
fi

if [ "$do_tsan" -eq 1 ]; then
  # Race gate: the whole suite builds under TSan, but only the
  # multi-threaded binaries are worth the (heavy) instrumented run time.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_pass build-tsan - -DTTRA_SANITIZE=thread \
    || { echo "== TSan gate FAILED"; exit 1; }
fi

if [ "$do_tidy" -eq 1 ]; then
  # Lint gate: needs clang-tidy plus a compile database (exported by the
  # normal pass). Opt-in by toolchain: skip, loudly, when not installed.
  if command -v clang-tidy >/dev/null 2>&1; then
    [ -f build/compile_commands.json ] || \
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    echo "== clang-tidy (config: .clang-tidy)"
    find src tools -name '*.cc' -o -name '*.cpp' | \
      xargs clang-tidy -p build --quiet --warnings-as-errors='*'
  else
    echo "== clang-tidy not installed; skipping lint pass"
  fi

  # Lock-discipline gate: clang's thread-safety analysis over every
  # annotated translation unit (util/thread_annotations.h enables the
  # attributes only under clang, so g++ builds are unaffected). Syntax-only
  # is enough — the analysis is a frontend pass.
  if command -v clang++ >/dev/null 2>&1; then
    echo "== clang -Wthread-safety (lock-discipline gate)"
    find src tools -name '*.cc' -o -name '*.cpp' | while read -r tu; do
      clang++ -std=c++20 -fsyntax-only -Isrc \
        -Wthread-safety -Werror=thread-safety "$tu" || exit 1
    done

    # Negative compile test: a deliberately mis-locked mutation MUST be
    # rejected, or the gate above is silently toothless.
    echo "== thread-safety negative test (must fail to compile)"
    if clang++ -std=c++20 -fsyntax-only -Isrc \
         -Wthread-safety -Werror=thread-safety \
         tests/negative_compile/mislocked.cc 2>/dev/null; then
      echo "== FAILED: mislocked.cc compiled cleanly; annotations are dead" >&2
      exit 1
    fi
    echo "   rejected, as required"
  else
    echo "== clang++ not installed; skipping thread-safety gate"
  fi
fi

if [ "$do_stress" -eq 1 ]; then
  # Stress gate: the randomized concurrency/crash suites (label `stress`)
  # with a deeper seed sweep than the tier-1 defaults (the differential
  # concurrency oracle reads TTRA_ORACLE_SEEDS when it runs).
  TTRA_ORACLE_SEEDS="${TTRA_ORACLE_SEEDS:-200}" \
  run_pass build stress
fi

if [ "$do_faults" -eq 1 ]; then
  # Fault gate: the seeded fault-schedule torture oracle (label `faults`)
  # over a deep sweep. Every seed derives a schedule of transient-EIO
  # bursts, torn appends, lying fsyncs and ENOSPC; the oracle requires
  # every acked commit durable-or-cleanly-failed, a gap-free transaction
  # chain, working degraded-mode reads, and that fsck --repair turns every
  # corrupted schedule into a successful recovery.
  TTRA_FAULT_SEEDS="${TTRA_FAULT_SEEDS:-200}" \
  run_pass build faults
fi

if [ "$do_bench" -eq 1 ]; then
  # Release bench smoke (experiment E12): exercises the hash-join and
  # FINDSTATE-cache fast paths under optimization and records the results
  # next to the sources for EXPERIMENTS.md.
  echo "== configure build-release (bench smoke)"
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "== build build-release benches"
  cmake --build build-release -j "$jobs" --target bench_operators bench_rollback bench_concurrent
  echo "== bench smoke (BENCH_operators.json, BENCH_rollback.json, BENCH_concurrent.json)"
  ./build-release/bench/bench_operators \
    --benchmark_filter='BM_EquiJoin' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_operators.json --benchmark_out_format=json
  ./build-release/bench/bench_rollback \
    --benchmark_filter='BM_RepeatedRollback' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_rollback.json --benchmark_out_format=json
  ./build-release/bench/bench_concurrent \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_concurrent.json --benchmark_out_format=json
fi

echo "== all requested checks passed"
