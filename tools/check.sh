#!/bin/sh
# Full local gate: build + test normally, then again under ASan/UBSan.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # normal pass only
#
# Run from the repository root. Build trees go to build/ (normal) and
# build-san/ (sanitized) so the two configurations never collide.
set -eu

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[ "${1:-}" = "--fast" ] && fast=1

run_pass() {
  dir=$1
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$jobs"
  echo "== test $dir"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_pass build

if [ "$fast" -eq 0 ]; then
  # Leak detection needs ptrace; fall back gracefully inside containers.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
  run_pass build-san "-DTTRA_SANITIZE=address;undefined"
fi

echo "== all checks passed"
