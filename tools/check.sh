#!/bin/sh
# Full local gate: build + test normally, then again under ASan/UBSan,
# then a Release-mode bench smoke that refreshes BENCH_*.json.
#
#   tools/check.sh            # all passes
#   tools/check.sh --fast     # normal pass only (no sanitizers, no bench)
#
# Run from the repository root. Build trees go to build/ (normal),
# build-san/ (sanitized), and build-release/ (bench smoke) so the three
# configurations never collide.
set -eu

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[ "${1:-}" = "--fast" ] && fast=1

run_pass() {
  dir=$1
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$jobs"
  echo "== test $dir"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_pass build

if [ "$fast" -eq 0 ]; then
  # Leak detection needs ptrace; fall back gracefully inside containers.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
  run_pass build-san "-DTTRA_SANITIZE=address;undefined"

  # Release bench smoke (experiment E12): exercises the hash-join and
  # FINDSTATE-cache fast paths under optimization and records the results
  # next to the sources for EXPERIMENTS.md.
  echo "== configure build-release (bench smoke)"
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "== build build-release benches"
  cmake --build build-release -j "$jobs" --target bench_operators bench_rollback
  echo "== bench smoke (BENCH_operators.json, BENCH_rollback.json)"
  ./build-release/bench/bench_operators \
    --benchmark_filter='BM_EquiJoin' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_operators.json --benchmark_out_format=json
  ./build-release/bench/bench_rollback \
    --benchmark_filter='BM_RepeatedRollback' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_rollback.json --benchmark_out_format=json
fi

echo "== all checks passed"
