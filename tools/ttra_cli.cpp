// ttra — command-line driver for the transaction-time algebraic language.
//
//   ttra run <script> [--db <file>] [--save <file>] [--lax] [--optimize]
//                     [--explain] [--wal-dir <dir>] [--fresh] [--recover]
//                     [--group-commit] [--sessions <n>] [--batch <k>]
//   ttra check <script> [--json] [--werror] [--help]
//   ttra describe --db <file>
//   ttra vacuum --db <file> --relation <name> --before <txn>
//               [--archive <file>] [--save <file>]
//   ttra recover --wal-dir <dir> [--save <file>]
//   ttra fsck --wal-dir <dir> [--json] [--repair]
//
// `check` runs the static diagnostics engine without executing anything:
// every error and warning in the script is reported with its source span
// and registry code (human-readable by default, machine-readable with
// --json). Exit codes: 0 clean (warnings allowed unless --werror), 1
// errors or warnings-under---werror, 2 usage / unreadable script. See
// `ttra check --help`.
//
// `run` executes a script of language statements against an empty database
// or one loaded with --db, printing every show() result; --save persists
// the resulting database. --optimize rewrites each expression with the
// algebraic optimizer before evaluation; --explain prints each statement's
// operator tree (after optimization, if enabled) without special casing.
//
// With --wal-dir, `run` executes durably: state is recovered from the
// directory's checkpoint + write-ahead log, and every update is logged and
// fsync'ed before it is acknowledged, so a crash mid-script loses nothing
// that was reported committed. --fresh discards any previous state in the
// directory first; --recover prints a recovery report before running.
// `recover` just recovers, reports, and (with --save) exports a plain
// database file. It refuses mid-log corruption (intact records stranded
// beyond a damaged one) instead of silently replaying a hole; `fsck`
// inspects the checkpoint + WAL, and with --repair quarantines damaged
// bytes to <wal>.quarantine and truncates to the last valid prefix so
// recover succeeds. Both share a documented exit-code table (see
// `ttra fsck --help`): 0 clean, 1 torn-tail/repaired, 3 needs-repair,
// 4 unrecoverable, 2 usage.
//
// With --group-commit (or --sessions), `run` goes through the concurrent
// executor instead: updates are enqueued to the writer thread and
// group-committed — one WAL record and one fsync per batch of up to
// --batch statements — while show statements drain the pipeline and are
// evaluated on --sessions concurrent reader sessions pinned at the same
// epoch, which must all agree. Requires --wal-dir.

#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lang/analyzer.h"
#include "lang/check.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "optimizer/rewriter.h"
#include "rollback/concurrent_executor.h"
#include "rollback/durable_executor.h"
#include "rollback/persistence.h"
#include "rollback/vacuum.h"
#include "storage/env.h"
#include "storage/salvage.h"

namespace {

using namespace ttra;

int Fail(const std::string& message) {
  std::cerr << "ttra: " << message << "\n";
  return 1;
}

struct Flags {
  std::vector<std::string> positional;
  std::map<std::string, std::string> values;  // --key value
  bool lax = false;
  bool optimize = false;
  bool explain = false;
  bool group_commit = false;
  bool fresh = false;
  bool recover = false;
  bool json = false;
  bool werror = false;
  bool help = false;
  bool repair = false;
};

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lax") {
      flags.lax = true;
    } else if (arg == "--optimize") {
      flags.optimize = true;
    } else if (arg == "--explain") {
      flags.explain = true;
    } else if (arg == "--group-commit") {
      flags.group_commit = true;
    } else if (arg == "--fresh") {
      flags.fresh = true;
    } else if (arg == "--recover") {
      flags.recover = true;
    } else if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--werror") {
      flags.werror = true;
    } else if (arg == "--help") {
      flags.help = true;
    } else if (arg == "--repair") {
      flags.repair = true;
    } else if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::cerr << "ttra: flag " << arg << " needs a value\n";
        return false;
      }
      flags.values[arg.substr(2)] = argv[++i];
    } else {
      flags.positional.push_back(arg);
    }
  }
  return true;
}

Result<Database> LoadOrEmpty(const Flags& flags) {
  auto it = flags.values.find("db");
  if (it == flags.values.end()) return Database();
  return LoadDatabase(it->second);
}

int SaveIfRequested(const Database& db, const Flags& flags) {
  auto it = flags.values.find("save");
  if (it == flags.values.end()) return 0;
  Status status = SaveDatabase(db, it->second);
  if (!status.ok()) return Fail("save failed: " + status.ToString());
  std::cout << "saved database to " << it->second << "\n";
  return 0;
}

/// Applies the optimizer to the expression inside a statement, leaving
/// non-expression statements untouched. The live database supplies exact
/// abstract facts (AbsStateFromDatabase), unlocking the facts-driven
/// rewrites (ρ-fold, ∅-pruning, constant folding) on top of the algebraic
/// ones — sound here because the statement evaluates against `db` itself.
lang::Stmt OptimizeStmt(const lang::Stmt& stmt, const lang::Catalog& catalog,
                        const Database& db) {
  const lang::AbsState facts = lang::AbsStateFromDatabase(db);
  if (std::holds_alternative<lang::ModifyStateStmt>(stmt)) {
    const auto& s = std::get<lang::ModifyStateStmt>(stmt);
    return lang::ModifyStateStmt{
        s.name, optimizer::OptimizeWithFacts(s.expr, catalog, facts)};
  }
  if (std::holds_alternative<lang::ShowStmt>(stmt)) {
    const auto& s = std::get<lang::ShowStmt>(stmt);
    return lang::ShowStmt{optimizer::OptimizeWithFacts(s.expr, catalog, facts)};
  }
  return stmt;
}

/// Translates a non-show language statement into the algebra's command
/// domain, evaluating any modify_state expression against `db`.
Result<Command> StmtToCommand(const lang::Stmt& stmt, const Database& db) {
  if (const auto* s = std::get_if<lang::DefineRelationStmt>(&stmt)) {
    return Command(DefineRelationCmd{s->name, s->type, s->schema});
  }
  if (const auto* s = std::get_if<lang::ModifyStateStmt>(&stmt)) {
    TTRA_ASSIGN_OR_RETURN(lang::StateValue value,
                          lang::EvalExpr(s->expr, db));
    if (auto* snapshot = std::get_if<SnapshotState>(&value)) {
      return Command(ModifySnapshotCmd{s->name, std::move(*snapshot)});
    }
    return Command(ModifyHistoricalCmd{
        s->name, std::get<HistoricalState>(std::move(value))});
  }
  if (const auto* s = std::get_if<lang::DeleteRelationStmt>(&stmt)) {
    return Command(DeleteRelationCmd{s->name});
  }
  if (const auto* s = std::get_if<lang::ModifySchemaStmt>(&stmt)) {
    return Command(ModifySchemaCmd{s->name, s->schema});
  }
  return InvalidArgumentError("show statements are not commands");
}

void ReportRecovery(TransactionNumber txn,
                    const DurableExecutor::RecoveryInfo& info) {
  std::cout << "recovered transaction " << txn << " (checkpoint at "
            << info.checkpoint_txn << ", " << info.replayed_records
            << " wal record(s) replayed"
            << (info.torn_tail ? ", torn tail truncated" : "") << ")\n";
}

void ReportRecovery(const DurableExecutor& exec) {
  ReportRecovery(exec.transaction_number(), exec.last_recovery());
}

Status ResetWalDir(Env* env, const std::string& wal_dir) {
  for (const char* name : {"wal.log", "checkpoint.db", "checkpoint.db.tmp"}) {
    const std::string path = wal_dir + "/" + std::string(name);
    if (!env->Exists(path)) continue;
    TTRA_RETURN_IF_ERROR(env->Remove(path));
  }
  return Status::Ok();
}

/// `run --wal-dir --group-commit`: the script executes through the
/// ConcurrentExecutor. Update statements are enqueued asynchronously and
/// the writer thread group-commits them (one WAL record + one fsync per
/// batch); only statements that must evaluate against current state — a
/// show, or a modify_state whose expression is not a constant — drain the
/// pipeline first. Show statements are evaluated on `--sessions` reader
/// sessions concurrently; all sessions open at the drained epoch and must
/// produce identical tables.
int CmdRunConcurrent(const Flags& flags, const std::string& wal_dir) {
  std::ifstream in(flags.positional[1]);
  if (!in) return Fail("cannot open script: " + flags.positional[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto program = lang::ParseProgram(buffer.str());
  if (!program.ok()) return Fail(program.status().ToString());
  if (flags.values.count("db")) {
    return Fail("--db and --wal-dir are exclusive; durable state lives in "
                "the wal directory (export it with --save)");
  }

  size_t sessions = 1;
  if (auto it = flags.values.find("sessions"); it != flags.values.end()) {
    try {
      sessions = std::stoull(it->second);
    } catch (const std::exception&) {
      sessions = 0;
    }
    if (sessions == 0) return Fail("--sessions expects a positive count");
  }
  ConcurrentOptions options;
  if (auto it = flags.values.find("batch"); it != flags.values.end()) {
    try {
      options.group_commit.max_batch = std::stoull(it->second);
    } catch (const std::exception&) {
      options.group_commit.max_batch = 0;
    }
    if (options.group_commit.max_batch == 0) {
      return Fail("--batch expects a positive batch size");
    }
  }

  Env* env = Env::Default();
  if (flags.fresh) {
    Status reset = ResetWalDir(env, wal_dir);
    if (!reset.ok()) return Fail("cannot reset state: " + reset.ToString());
  }
  ConcurrentExecutor exec(env, wal_dir, options);
  Status started = exec.Start();
  if (!started.ok()) return Fail("recovery failed: " + started.ToString());
  if (flags.recover) ReportRecovery(exec.transaction_number(),
                                    exec.last_recovery());

  // Statements in flight: resolved whenever the pipeline drains, so a
  // command error is reported near its statement, not at script end.
  std::vector<std::pair<std::string, std::future<Result<TransactionNumber>>>>
      inflight;
  auto settle = [&]() -> int {
    if (!exec.Drain().ok()) return 1;
    for (auto& [text, future] : inflight) {
      Result<TransactionNumber> result = future.get();
      if (result.ok()) continue;
      if (!flags.lax || !exec.healthy()) {
        return Fail(result.status().ToString() + " [" + text + "]");
      }
      std::cerr << "ttra: " << result.status().ToString() << " [" << text
                << "] (continuing)\n";
    }
    inflight.clear();
    return 0;
  };

  for (const lang::Stmt& raw : *program) {
    const auto* modify = std::get_if<lang::ModifyStateStmt>(&raw);
    const auto* show = std::get_if<lang::ShowStmt>(&raw);
    // A constant modify_state needs no database to evaluate, so it can be
    // enqueued without draining; anything that reads state (including the
    // facts-driven optimizer) must wait for its own writes.
    const bool needs_state =
        show != nullptr || flags.optimize ||
        (modify != nullptr &&
         modify->expr.kind() != lang::Expr::Kind::kConst);
    Database db;
    if (needs_state) {
      if (int rc = settle(); rc != 0) return rc;
      db = exec.Snapshot();
    }
    lang::Catalog catalog(db);
    const lang::Stmt stmt =
        flags.optimize ? OptimizeStmt(raw, catalog, db) : raw;
    if (flags.explain) {
      std::cout << "-- " << lang::StmtToString(stmt) << "\n";
      if (const lang::Expr* expr = StmtExpr(stmt)) {
        std::cout << lang::FormatExprTree(*expr);
      }
    }
    if (show != nullptr) {
      const auto* pipelined_show = std::get_if<lang::ShowStmt>(&stmt);
      // Evaluate on N pinned sessions concurrently. They all open at the
      // drained epoch, so E⟦·⟧ purity demands byte-identical tables; a
      // disagreement is an isolation bug, not a user error.
      std::vector<Session> views;
      views.reserve(sessions);
      for (size_t s = 0; s < sessions; ++s) views.push_back(exec.OpenSession());
      std::vector<Result<lang::StateValue>> results(
          sessions, Result<lang::StateValue>(InternalError("not evaluated")));
      std::vector<std::thread> evaluators;
      evaluators.reserve(sessions);
      for (size_t s = 0; s < sessions; ++s) {
        evaluators.emplace_back([&, s]() {
          results[s] =
              lang::EvalExpr(pipelined_show->expr, views[s].database());
        });
      }
      for (auto& t : evaluators) t.join();
      Status status = Status::Ok();
      std::string table;
      for (size_t s = 0; s < sessions; ++s) {
        if (!results[s].ok()) {
          status = results[s].status();
          break;
        }
        std::string rendered = lang::FormatTable(*results[s]);
        if (s == 0) {
          table = std::move(rendered);
        } else if (rendered != table) {
          return Fail("session disagreement at epoch " +
                      std::to_string(views[s].epoch()) +
                      ": isolation bug (please report)");
        }
      }
      if (status.ok()) {
        std::cout << table;
      } else if (!flags.lax) {
        return Fail(status.ToString());
      } else {
        std::cerr << "ttra: " << status.ToString() << " (continuing)\n";
      }
      continue;
    }
    auto command = StmtToCommand(stmt, db);
    if (!command.ok()) {
      if (!flags.lax) return Fail(command.status().ToString());
      std::cerr << "ttra: " << command.status().ToString()
                << " (continuing)\n";
      continue;
    }
    std::vector<Command> sentence;
    sentence.push_back(*std::move(command));
    inflight.emplace_back(lang::StmtToString(stmt),
                          exec.SubmitAsync(std::move(sentence)));
  }
  if (int rc = settle(); rc != 0) return rc;

  const ConcurrentExecutor::Stats stats = exec.stats();
  exec.Stop();
  std::cout << "ok (transaction " << exec.transaction_number() << ")\n";
  std::cout << "group commit: " << stats.commits << " commit(s) in "
            << stats.batches << " batch(es), largest " << stats.max_batch
            << ", " << stats.wal.syncs << " fsync(s)\n";
  return SaveIfRequested(exec.Snapshot(), flags);
}

/// `run --wal-dir`: the script executes through a DurableExecutor, so
/// every statement is logged and fsync'ed before it is acknowledged.
int CmdRunDurable(const Flags& flags, const std::string& wal_dir) {
  std::ifstream in(flags.positional[1]);
  if (!in) return Fail("cannot open script: " + flags.positional[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto program = lang::ParseProgram(buffer.str());
  if (!program.ok()) return Fail(program.status().ToString());
  if (flags.values.count("db")) {
    return Fail("--db and --wal-dir are exclusive; durable state lives in "
                "the wal directory (export it with --save)");
  }

  Env* env = Env::Default();
  if (flags.fresh) {
    Status reset = ResetWalDir(env, wal_dir);
    if (!reset.ok()) return Fail("cannot reset state: " + reset.ToString());
  }
  DurableExecutor exec(env, wal_dir);
  Status opened = exec.Open();
  if (!opened.ok()) return Fail("recovery failed: " + opened.ToString());
  if (flags.recover) ReportRecovery(exec);

  for (const lang::Stmt& raw : *program) {
    const Database db = exec.Snapshot();  // read-only view for evaluation
    lang::Catalog catalog(db);
    const lang::Stmt stmt =
        flags.optimize ? OptimizeStmt(raw, catalog, db) : raw;
    if (flags.explain) {
      std::cout << "-- " << lang::StmtToString(stmt) << "\n";
      if (const lang::Expr* expr = StmtExpr(stmt)) {
        std::cout << lang::FormatExprTree(*expr);
      }
    }
    Status status = Status::Ok();
    if (const auto* show = std::get_if<lang::ShowStmt>(&stmt)) {
      auto value = lang::EvalExpr(show->expr, db);
      if (value.ok()) std::cout << lang::FormatTable(*value);
      status = value.status();
    } else {
      auto command = StmtToCommand(stmt, db);
      status = command.ok() ? exec.Submit(*command).status()
                            : command.status();
    }
    if (!status.ok()) {
      // An unhealthy executor means the log write itself failed; stopping
      // is the only honest option even under --lax.
      if (!flags.lax || !exec.healthy()) return Fail(status.ToString());
      std::cerr << "ttra: " << status.ToString() << " (continuing)\n";
    }
  }
  std::cout << "ok (transaction " << exec.transaction_number() << ")\n";
  return SaveIfRequested(exec.Snapshot(), flags);
}

int CmdRun(const Flags& flags) {
  if (flags.positional.size() != 2) {
    return Fail("usage: ttra run <script> [--db f] [--save f] [--lax] "
                "[--optimize] [--explain] [--wal-dir d] [--fresh] "
                "[--recover] [--group-commit] [--sessions n] [--batch k]");
  }
  auto wal_dir = flags.values.find("wal-dir");
  if (flags.group_commit || flags.values.count("sessions") ||
      flags.values.count("batch")) {
    if (wal_dir == flags.values.end()) {
      return Fail("--group-commit/--sessions/--batch require --wal-dir");
    }
    return CmdRunConcurrent(flags, wal_dir->second);
  }
  if (wal_dir != flags.values.end()) {
    return CmdRunDurable(flags, wal_dir->second);
  }
  std::ifstream in(flags.positional[1]);
  if (!in) return Fail("cannot open script: " + flags.positional[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto db = LoadOrEmpty(flags);
  if (!db.ok()) return Fail("load failed: " + db.status().ToString());

  auto program = lang::ParseProgram(buffer.str());
  if (!program.ok()) return Fail(program.status().ToString());

  const lang::ExecOptions options{.strict = !flags.lax};
  for (const lang::Stmt& raw : *program) {
    lang::Catalog catalog(*db);
    const lang::Stmt stmt =
        flags.optimize ? OptimizeStmt(raw, catalog, *db) : raw;
    if (flags.explain) {
      std::cout << "-- " << lang::StmtToString(stmt) << "\n";
      if (const lang::Expr* expr = StmtExpr(stmt)) {
        std::cout << lang::FormatExprTree(*expr);
      }
    }
    std::vector<lang::StateValue> outputs;
    Status status = lang::ExecStmt(stmt, *db, &outputs, options);
    if (!status.ok()) return Fail(status.ToString());
    for (const auto& value : outputs) {
      std::cout << lang::FormatTable(value);
    }
  }
  std::cout << "ok (transaction " << db->transaction_number() << ")\n";
  return SaveIfRequested(*db, flags);
}

int CmdCheckHelp() {
  std::cout <<
      "usage: ttra check <script> [--json] [--werror]\n"
      "\n"
      "Runs the static diagnostics engine over the script without executing\n"
      "it: per-statement analysis plus the whole-program abstract\n"
      "interpreter (TTRA-W006..W009). Nothing is evaluated and no database\n"
      "is touched.\n"
      "\n"
      "flags:\n"
      "  --json    machine-readable output (schema carries a \"version\"\n"
      "            field; current version " << lang::kDiagnosticsJsonVersion
      << ")\n"
      "  --werror  treat warnings as errors for the exit code\n"
      "\n"
      "exit codes:\n"
      "  0  script is clean (warnings allowed unless --werror)\n"
      "  1  the script has errors, or warnings under --werror\n"
      "  2  usage error or the script cannot be opened\n";
  return 0;
}

int CmdCheck(const Flags& flags) {
  if (flags.help) return CmdCheckHelp();
  if (flags.positional.size() != 2) {
    std::cerr << "ttra: usage: ttra check <script> [--json] [--werror] "
                 "(--help for details)\n";
    return 2;
  }
  const std::string& path = flags.positional[1];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ttra: cannot open script: " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const lang::DiagnosticSink sink = lang::CheckSource(buffer.str());
  if (flags.json) {
    std::cout << lang::DiagnosticsToJson(sink.diagnostics(), path);
  } else {
    std::cout << lang::FormatDiagnostics(sink.diagnostics(), path);
  }
  if (sink.has_errors()) return 1;
  if (flags.werror && sink.warning_count() > 0) return 1;
  return 0;
}

int CmdDescribe(const Flags& flags) {
  auto db = LoadOrEmpty(flags);
  if (!db.ok()) return Fail("load failed: " + db.status().ToString());
  std::cout << lang::DescribeDatabase(*db);
  return 0;
}

int CmdVacuum(const Flags& flags) {
  auto db = LoadOrEmpty(flags);
  if (!db.ok()) return Fail("load failed: " + db.status().ToString());
  auto relation = flags.values.find("relation");
  auto before = flags.values.find("before");
  if (relation == flags.values.end() || before == flags.values.end()) {
    return Fail(
        "usage: ttra vacuum --db f --relation r --before txn "
        "[--archive f] [--save f]");
  }
  TransactionNumber cutoff = 0;
  try {
    cutoff = std::stoull(before->second);
  } catch (const std::exception&) {
    return Fail("--before expects a transaction number");
  }
  auto result = VacuumRelation(*db, relation->second, cutoff);
  if (!result.ok()) return Fail(result.status().ToString());
  std::cout << "archived " << result->archived_states << " state(s), "
            << result->archive.size() << " bytes\n";
  auto archive_path = flags.values.find("archive");
  if (archive_path != flags.values.end() && !result->archive.empty()) {
    std::ofstream out(archive_path->second,
                      std::ios::binary | std::ios::trunc);
    if (!out) return Fail("cannot write archive: " + archive_path->second);
    out.write(result->archive.data(),
              static_cast<std::streamsize>(result->archive.size()));
  }
  return SaveIfRequested(*db, flags);
}

/// Salvage with full semantic validation: a WAL record must decode into
/// logged sentences and the checkpoint must decode into a database, not
/// merely pass their checksums.
SalvageOptions MakeSalvageOptions() {
  SalvageOptions options;
  options.validate_record = [](std::string_view payload) {
    auto decoded = DecodeWalRecord(payload);
    return decoded.ok() ? Status::Ok() : decoded.status();
  };
  options.validate_checkpoint = [](std::string_view data) {
    auto db = DecodeDatabase(data);
    return db.ok() ? Status::Ok() : db.status();
  };
  return options;
}

int CmdFsckHelp() {
  std::cout <<
      "usage: ttra fsck --wal-dir <dir> [--json] [--repair]\n"
      "\n"
      "Scans the directory's checkpoint and write-ahead log: every frame\n"
      "is checksum-verified and decoded, and each corrupt record is\n"
      "reported with its byte offset and cause. Without --repair nothing\n"
      "is modified. With --repair the damaged bytes are moved to\n"
      "<wal>.quarantine and the log is truncated to its last valid prefix\n"
      "so `ttra recover` succeeds; nothing is ever deleted.\n"
      "\n"
      "flags:\n"
      "  --json    machine-readable report\n"
      "  --repair  quarantine damaged bytes and truncate the log\n"
      "\n"
      "exit codes (shared with `ttra recover`):\n"
      "  0  clean: checkpoint and log fully intact\n"
      "  1  torn tail only (or damage successfully repaired): recovery\n"
      "     truncates and continues\n"
      "  2  usage error or the directory cannot be read\n"
      "  3  corruption needs repair: intact records are stranded beyond\n"
      "     the damage (or the log header is damaged); rerun with --repair\n"
      "  4  unrecoverable: the checkpoint itself is corrupt\n";
  return 0;
}

int CmdFsck(const Flags& flags) {
  if (flags.help) return CmdFsckHelp();
  auto dir = flags.values.find("wal-dir");
  if (dir == flags.values.end() || flags.positional.size() != 1) {
    std::cerr << "ttra: usage: ttra fsck --wal-dir <dir> [--json] [--repair] "
                 "(--help for details)\n";
    return 2;
  }
  const SalvageOptions options = MakeSalvageOptions();
  Result<SalvageReport> report =
      flags.repair ? RepairStorage(Env::Default(), dir->second, options)
                   : ScanStorage(Env::Default(), dir->second, options);
  if (!report.ok()) {
    std::cerr << "ttra: fsck failed: " << report.status().ToString() << "\n";
    return 2;
  }
  std::cout << (flags.json ? SalvageReportToJson(*report)
                           : FormatSalvageReport(*report));
  return SalvageExitCode(*report);
}

int CmdRecover(const Flags& flags) {
  auto dir = flags.values.find("wal-dir");
  if (dir == flags.values.end() || flags.positional.size() != 1) {
    std::cerr << "ttra: usage: ttra recover --wal-dir <dir> [--save f] "
                 "(exit codes: see `ttra fsck --help`)\n";
    return 2;
  }
  // Classify the damage before touching anything, so the exit code can
  // distinguish clean (0) / recovered-with-truncated-tail (1) /
  // needs-repair (3) / unrecoverable (4), mirroring fsck.
  auto scanned = ScanStorage(Env::Default(), dir->second, MakeSalvageOptions());
  if (!scanned.ok()) {
    std::cerr << "ttra: cannot scan " << dir->second << ": "
              << scanned.status().ToString() << "\n";
    return 2;
  }
  if (scanned->verdict == SalvageVerdict::kNeedsRepair ||
      scanned->verdict == SalvageVerdict::kUnrecoverable) {
    std::cout << FormatSalvageReport(*scanned);
    std::cerr << "ttra: refusing to recover ("
              << SalvageVerdictName(scanned->verdict)
              << "); run `ttra fsck --repair --wal-dir " << dir->second
              << "`\n";
    return SalvageExitCode(*scanned);
  }
  DurableExecutor exec(Env::Default(), dir->second);
  Status opened = exec.Open();
  if (!opened.ok()) {
    std::cerr << "ttra: recovery failed: " << opened.ToString() << "\n";
    return 4;
  }
  ReportRecovery(exec);
  const Database db = exec.Snapshot();
  std::cout << lang::DescribeDatabase(db);
  const int saved = SaveIfRequested(db, flags);
  if (saved != 0) return saved;
  return SalvageExitCode(*scanned);  // 0 clean, 1 truncated tail
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) return 1;
  if (flags.positional.empty()) {
    return Fail("usage: ttra <run|check|describe|vacuum|recover|fsck> ...");
  }
  const std::string& command = flags.positional[0];
  if (command == "run") return CmdRun(flags);
  if (command == "check") return CmdCheck(flags);
  if (command == "describe") return CmdDescribe(flags);
  if (command == "vacuum") return CmdVacuum(flags);
  if (command == "recover") return CmdRecover(flags);
  if (command == "fsck") return CmdFsck(flags);
  return Fail("unknown command: " + command);
}
